// Command cnc runs all-edge common neighbor counting on a graph and prints
// timing, work statistics and result checksums.
//
// Usage:
//
//	cnc -graph graph.txt -algo bmp -reorder
//	cnc -profile TW -scale 0.5 -algo mps -threads 8
//	cnc -profile LJ -processor knl -algo mps    # modeled KNL time
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"cncount"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cnc: ")

	var (
		graphPath = flag.String("graph", "", "graph file (text edge list, or binary CSR with .bin)")
		profile   = flag.String("profile", "", "generate a dataset profile instead: "+strings.Join(cncount.ProfileNames(), ", "))
		scale     = flag.Float64("scale", 1.0, "profile scale (1.0 ≈ 1/1000 of the paper's dataset)")
		algoName  = flag.String("algo", "bmp", "algorithm: m, mps, bmp, bmprf")
		threads   = flag.Int("threads", 0, "worker count (0 = all cores, 1 = sequential)")
		taskSize  = flag.Int("tasksize", 0, "edge offsets per scheduled task (0 = default)")
		lanes     = flag.Int("lanes", 0, "block-merge lane width (0 = default 8)")
		skew      = flag.Float64("skew", 0, "MPS degree-skew threshold t (0 = default 50)")
		rangeSc   = flag.Int("rangescale", 0, "RF bitmap:filter ratio (0 = default)")
		reorder   = flag.Bool("reorder", true, "degree-descending reordering before counting")
		work      = flag.Bool("work", false, "collect and print abstract work counters")
		processor = flag.String("processor", "", "also model elapsed time on: cpu, knl, gpu")
		verifyFlg = flag.Bool("verify", false, "cross-check against the reference counter (slow)")
	)
	flag.Parse()

	g, name, err := loadOrGenerate(*graphPath, *profile, *scale)
	if err != nil {
		log.Fatal(err)
	}
	algo, err := parseAlgo(*algoName)
	if err != nil {
		log.Fatal(err)
	}

	s := cncount.Summarize(name, g)
	fmt.Println(s)
	fmt.Printf("skewed intersections (>50x): %.2f%%\n", cncount.SkewPercent(g, 50))

	res, err := cncount.Count(g, cncount.Options{
		Algorithm:     algo,
		Threads:       *threads,
		TaskSize:      *taskSize,
		Lanes:         *lanes,
		SkewThreshold: *skew,
		RangeScale:    *rangeSc,
		Reorder:       *reorder,
		CollectWork:   *work,
	})
	if err != nil {
		log.Fatal(err)
	}
	var sum uint64
	for _, c := range res.Counts {
		sum += uint64(c)
	}
	fmt.Printf("algorithm %v, %d threads: %v\n", algo, res.Threads, res.Elapsed)
	fmt.Printf("count sum %d, triangles %d\n", sum, res.TriangleCount())
	if *work {
		fmt.Printf("work: %+v\n", res.Work)
	}

	if *processor != "" {
		proc, err := parseProcessor(*processor)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := cncount.Simulate(g, cncount.SimOptions{
			Processor:    proc,
			Algorithm:    algo,
			CoProcessing: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("modeled on %v: %v\n", proc, sim.Modeled)
	}

	if *verifyFlg {
		base, err := cncount.Count(g, cncount.Options{Algorithm: cncount.AlgoM, Threads: 1})
		if err != nil {
			log.Fatal(err)
		}
		for e := range base.Counts {
			if res.Counts[e] != base.Counts[e] {
				log.Fatalf("VERIFY FAILED at edge offset %d: %d != %d", e, res.Counts[e], base.Counts[e])
			}
		}
		fmt.Println("verify: counts match the sequential baseline")
	}
}

func loadOrGenerate(path, profile string, scale float64) (*cncount.Graph, string, error) {
	switch {
	case path != "" && profile != "":
		return nil, "", fmt.Errorf("pass either -graph or -profile, not both")
	case path != "":
		g, err := cncount.LoadGraph(path)
		return g, path, err
	case profile != "":
		g, err := cncount.GenerateProfile(profile, scale)
		return g, profile, err
	default:
		flag.Usage()
		os.Exit(2)
		return nil, "", nil
	}
}

func parseAlgo(s string) (cncount.Algorithm, error) {
	switch strings.ToLower(s) {
	case "m", "merge":
		return cncount.AlgoM, nil
	case "mps":
		return cncount.AlgoMPS, nil
	case "bmp":
		return cncount.AlgoBMP, nil
	case "bmprf", "bmp-rf", "rf":
		return cncount.AlgoBMPRF, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (want m, mps, bmp, bmprf)", s)
	}
}

func parseProcessor(s string) (cncount.Processor, error) {
	switch strings.ToLower(s) {
	case "cpu":
		return cncount.ProcCPU, nil
	case "knl":
		return cncount.ProcKNL, nil
	case "gpu":
		return cncount.ProcGPU, nil
	default:
		return 0, fmt.Errorf("unknown processor %q (want cpu, knl, gpu)", s)
	}
}
