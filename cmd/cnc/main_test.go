package main

import (
	"path/filepath"
	"testing"

	"cncount"
)

func TestParseAlgo(t *testing.T) {
	cases := map[string]cncount.Algorithm{
		"m": cncount.AlgoM, "merge": cncount.AlgoM,
		"mps": cncount.AlgoMPS, "MPS": cncount.AlgoMPS,
		"bmp":   cncount.AlgoBMP,
		"bmprf": cncount.AlgoBMPRF, "bmp-rf": cncount.AlgoBMPRF, "rf": cncount.AlgoBMPRF,
	}
	for in, want := range cases {
		got, err := parseAlgo(in)
		if err != nil {
			t.Errorf("parseAlgo(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("parseAlgo(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := parseAlgo("quantum"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestParseProcessor(t *testing.T) {
	cases := map[string]cncount.Processor{
		"cpu": cncount.ProcCPU, "KNL": cncount.ProcKNL, "gpu": cncount.ProcGPU,
	}
	for in, want := range cases {
		got, err := parseProcessor(in)
		if err != nil {
			t.Errorf("parseProcessor(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("parseProcessor(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := parseProcessor("tpu"); err == nil {
		t.Error("unknown processor accepted")
	}
}

func TestLoadOrGenerate(t *testing.T) {
	if _, _, err := loadOrGenerate("x.txt", "TW", 1); err == nil {
		t.Error("both -graph and -profile accepted")
	}
	g, name, err := loadOrGenerate("", "LJ", 0.05)
	if err != nil {
		t.Fatalf("profile generation: %v", err)
	}
	if name != "LJ" || g.NumEdges() == 0 {
		t.Errorf("generated %q with %d edges", name, g.NumEdges())
	}

	path := filepath.Join(t.TempDir(), "g.bin")
	if err := cncount.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	g2, name2, err := loadOrGenerate(path, "", 1)
	if err != nil {
		t.Fatalf("file load: %v", err)
	}
	if name2 != path || g2.NumEdges() != g.NumEdges() {
		t.Error("file round trip mismatch")
	}
}
