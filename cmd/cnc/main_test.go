package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"cncount"
	"cncount/internal/logx"
	"cncount/internal/obs"
	"cncount/internal/trace"
)

func TestParseAlgo(t *testing.T) {
	cases := map[string]cncount.Algorithm{
		"m": cncount.AlgoM, "merge": cncount.AlgoM,
		"mps": cncount.AlgoMPS, "MPS": cncount.AlgoMPS,
		"bmp":   cncount.AlgoBMP,
		"bmprf": cncount.AlgoBMPRF, "bmp-rf": cncount.AlgoBMPRF, "rf": cncount.AlgoBMPRF,
		"adaptive": cncount.AlgoAdaptive, "adapt": cncount.AlgoAdaptive,
	}
	for in, want := range cases {
		got, err := parseAlgo(in)
		if err != nil {
			t.Errorf("parseAlgo(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("parseAlgo(%q) = %v, want %v", in, got, want)
		}
	}
	_, err := parseAlgo("quantum")
	if err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	// The rejection must list every valid name so the user can self-serve.
	for _, name := range []string{"m", "mps", "bmp", "bmprf", "adaptive"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list valid name %q", err, name)
		}
	}
}

func TestParseProcessor(t *testing.T) {
	cases := map[string]cncount.Processor{
		"cpu": cncount.ProcCPU, "KNL": cncount.ProcKNL, "gpu": cncount.ProcGPU,
	}
	for in, want := range cases {
		got, err := parseProcessor(in)
		if err != nil {
			t.Errorf("parseProcessor(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("parseProcessor(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := parseProcessor("tpu"); err == nil {
		t.Error("unknown processor accepted")
	}
}

func TestLoadOrGenerate(t *testing.T) {
	if _, _, err := loadOrGenerate("x.txt", "TW", 1, nil, nil); err == nil {
		t.Error("both -graph and -profile accepted")
	}
	if _, _, err := loadOrGenerate("", "", 1, nil, nil); err == nil {
		t.Error("neither -graph nor -profile accepted")
	}
	g, name, err := loadOrGenerate("", "LJ", 0.05, nil, nil)
	if err != nil {
		t.Fatalf("profile generation: %v", err)
	}
	if name != "LJ" || g.NumEdges() == 0 {
		t.Errorf("generated %q with %d edges", name, g.NumEdges())
	}

	path := filepath.Join(t.TempDir(), "g.bin")
	if err := cncount.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	g2, name2, err := loadOrGenerate(path, "", 1, nil, nil)
	if err != nil {
		t.Fatalf("file load: %v", err)
	}
	if name2 != path || g2.NumEdges() != g.NumEdges() {
		t.Error("file round trip mismatch")
	}
}

// smallRun is an appConfig that finishes quickly for CLI-level tests.
func smallRun() appConfig {
	return appConfig{profile: "WI", scale: 0.1, algoName: "bmp", threads: 2, reorder: true}
}

// TestRunMetricsSnapshotToStdout drives `cnc -metrics -` end to end and
// validates the emitted JSON: phase durations, per-worker scheduler
// tallies, and the imbalance summary must all be present and coherent.
func TestRunMetricsSnapshotToStdout(t *testing.T) {
	cfg := smallRun()
	cfg.metricsOut = "-"
	var buf bytes.Buffer
	if err := run(context.Background(), cfg, &buf); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}

	// The snapshot is the single line starting with '{' (everything else
	// cnc prints is plain text).
	var jsonLine string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "{") {
			jsonLine = line
			break
		}
	}
	if jsonLine == "" {
		t.Fatalf("no JSON snapshot in output:\n%s", buf.String())
	}
	var snap cncount.MetricsSnapshot
	if err := json.Unmarshal([]byte(jsonLine), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, jsonLine)
	}

	for _, phase := range []string{"generate", "reorder", "core.setup", "core.count", "core.reduce", "map_counts"} {
		if _, ok := snap.Phase(phase); !ok {
			t.Errorf("phase %q missing from snapshot", phase)
		}
	}
	if snap.Counters["core.edges_scanned"] == 0 {
		t.Error("edges_scanned counter missing or zero")
	}
	if len(snap.Sched) != 1 {
		t.Fatalf("sched snapshots = %d, want 1", len(snap.Sched))
	}
	sc := snap.Sched[0]
	if sc.Scope != "core.count" || len(sc.Workers) != 2 {
		t.Errorf("sched scope=%q workers=%d, want core.count/2", sc.Scope, len(sc.Workers))
	}
	var units uint64
	for _, w := range sc.Workers {
		units += w.UnitsProcessed
	}
	if units != snap.Counters["core.edges_scanned"] {
		t.Errorf("worker units %d != edges scanned %d", units, snap.Counters["core.edges_scanned"])
	}
	if sc.Imbalance.Ratio < 1.0 {
		t.Errorf("imbalance ratio = %g, want >= 1 for a real run", sc.Imbalance.Ratio)
	}
}

func TestRunMetricsSnapshotToFile(t *testing.T) {
	cfg := smallRun()
	cfg.metricsOut = filepath.Join(t.TempDir(), "metrics.json")
	var buf bytes.Buffer
	if err := run(context.Background(), cfg, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(cfg.metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	var snap cncount.MetricsSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v", err)
	}
	if len(snap.Phases) == 0 {
		t.Error("metrics file has no phases")
	}
}

func TestRunMetricsFileCreateErrorExitsNonZero(t *testing.T) {
	cfg := smallRun()
	cfg.metricsOut = filepath.Join(t.TempDir(), "missing-dir", "metrics.json")
	if err := run(context.Background(), cfg, io.Discard); err == nil {
		t.Error("unwritable metrics path did not fail the run")
	}
}

// TestRunTraceFile drives `cnc -graph saved.bin -trace out.json` end to
// end on a generated-then-saved graph and schema-checks the timeline:
// valid Chrome trace-event JSON, at least one span per sched worker, and
// all three Count phases.
func TestRunTraceFile(t *testing.T) {
	dir := t.TempDir()
	g, err := cncount.GenerateProfile("WI", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// A text edge list exercises both graph.parse and graph.build (binary
	// CSR decodes directly and records only the parse span).
	graphPath := filepath.Join(dir, "g.txt")
	if err := cncount.SaveGraph(graphPath, g); err != nil {
		t.Fatal(err)
	}

	cfg := smallRun()
	cfg.profile = ""
	cfg.graphPath = graphPath
	cfg.traceOut = filepath.Join(dir, "out.json")
	var buf bytes.Buffer
	if err := run(context.Background(), cfg, &buf); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "trace written to") {
		t.Error("trace path not announced")
	}

	data, err := os.ReadFile(cfg.traceOut)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(data); err != nil {
		t.Fatalf("trace fails schema check: %v\n%s", err, data)
	}
	perTid, names, err := trace.SpanCount(data)
	if err != nil {
		t.Fatal(err)
	}
	// threads=2 → sched workers 0 and 1 → trace rows tid 1 and 2, each
	// with at least one task span.
	for w := 0; w < cfg.threads; w++ {
		if perTid[w+1] == 0 {
			t.Errorf("sched worker %d (tid %d) has no spans; per-tid: %v", w, w+1, perTid)
		}
	}
	for _, phase := range []string{"graph.parse", "graph.build", "core.setup", "core.count", "core.reduce", "reorder", "map_counts"} {
		if names[phase] == 0 {
			t.Errorf("phase span %q missing from trace; spans: %v", phase, names)
		}
	}
}

// TestRunTraceFileCreateErrorExitsNonZero pins the exit contract for an
// unwritable -trace path.
func TestRunTraceFileCreateErrorExitsNonZero(t *testing.T) {
	cfg := smallRun()
	cfg.traceOut = filepath.Join(t.TempDir(), "missing-dir", "out.json")
	if err := run(context.Background(), cfg, io.Discard); err == nil {
		t.Error("unwritable trace path did not fail the run")
	}
}

// TestRunCalibrateStandalone drives `cnc -calibrate` with no graph or
// profile: it must print a parseable crossover table that passes the same
// validation gate the dispatcher applies, then stop.
func TestRunCalibrateStandalone(t *testing.T) {
	cfg := appConfig{calibrate: true}
	var buf bytes.Buffer
	if err := run(context.Background(), cfg, &buf); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	var table cncount.CalibrationTable
	if err := json.Unmarshal(buf.Bytes(), &table); err != nil {
		t.Fatalf("-calibrate output is not a JSON table: %v\n%s", err, buf.String())
	}
	if err := table.Validate(); err != nil {
		t.Fatalf("printed table fails validation: %v", err)
	}
	if table.Source != "calibrated" {
		t.Errorf("table source = %q, want calibrated", table.Source)
	}
}

// TestRunCalibrateWithAdaptiveRun: -calibrate combined with a profile and
// -algo adaptive must count with the measured table and pass -verify.
func TestRunCalibrateWithAdaptiveRun(t *testing.T) {
	cfg := smallRun()
	cfg.algoName = "adaptive"
	cfg.calibrate = true
	cfg.verify = true
	var buf bytes.Buffer
	if err := run(context.Background(), cfg, &buf); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "verify: counts match") {
		t.Errorf("verify success not reported:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `"source": "calibrated"`) {
		t.Errorf("calibrated table not printed:\n%s", buf.String())
	}
}

func TestRunVerifyPasses(t *testing.T) {
	cfg := smallRun()
	cfg.verify = true
	var buf bytes.Buffer
	if err := run(context.Background(), cfg, &buf); err != nil {
		t.Fatalf("verify on a correct run failed: %v", err)
	}
	if !strings.Contains(buf.String(), "verify: counts match") {
		t.Error("verify success not reported")
	}
}

func TestCompareCountsMismatch(t *testing.T) {
	if err := compareCounts([]uint32{1, 2, 3}, []uint32{1, 2, 3}); err != nil {
		t.Errorf("equal counts rejected: %v", err)
	}
	err := compareCounts([]uint32{1, 9, 3}, []uint32{1, 2, 3})
	if err == nil {
		t.Fatal("mismatch accepted")
	}
	if !strings.Contains(err.Error(), "offset 1") {
		t.Errorf("error %q does not locate the mismatch", err)
	}
	if err := compareCounts([]uint32{1}, []uint32{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

// failAfterWriter fails every write after the first n bytes, modeling a
// full disk / closed pipe on stdout.
type failAfterWriter struct {
	n       int
	written int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		return 0, errors.New("simulated write failure")
	}
	w.written += len(p)
	return len(p), nil
}

func TestRunOutputErrorExitsNonZero(t *testing.T) {
	cfg := smallRun()
	err := run(context.Background(), cfg, &failAfterWriter{n: 10})
	if err == nil {
		t.Fatal("output write failure did not fail the run")
	}
	if !strings.Contains(err.Error(), "simulated write failure") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestRunBadHTTPAddr(t *testing.T) {
	cfg := smallRun()
	cfg.httpAddr = "256.256.256.256:0"
	if err := run(context.Background(), cfg, io.Discard); err == nil {
		t.Error("invalid -http address accepted")
	}
}

// TestRunRejectsUnknownLogFormat pins that a bad -logfmt fails the run
// before any work starts.
func TestRunRejectsUnknownLogFormat(t *testing.T) {
	cfg := smallRun()
	cfg.logFormat = "yaml"
	if err := run(context.Background(), cfg, io.Discard); err == nil {
		t.Error("unknown -logfmt accepted")
	}
}

// TestRunStructuredLogOnCancel checks lifecycle events come out of the
// configured slog logger as structured records: a timed-out run emits a
// parseable JSON "run did not complete" event under -logfmt json.
func TestRunStructuredLogOnCancel(t *testing.T) {
	cfg := smallRun()
	cfg.timeout = time.Nanosecond // expires before the count starts
	var logBuf bytes.Buffer
	logger, err := logx.New(&logBuf, "json", "cnc")
	if err != nil {
		t.Fatal(err)
	}
	cfg.logger = logger
	if err := run(context.Background(), cfg, io.Discard); err == nil {
		t.Fatal("timed-out run returned nil")
	}
	found := false
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, line)
		}
		if rec["msg"] == "run did not complete" && rec["component"] == "cnc" {
			found = true
			if rec["reason"] == nil {
				t.Errorf("cancellation record lacks reason: %v", rec)
			}
		}
	}
	if !found {
		t.Errorf("no structured cancellation event:\n%s", logBuf.String())
	}
}

// syncBuffer is a bytes.Buffer safe for one writer and one poller.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRunHTTPPlaneServesLive drives `cnc -http 127.0.0.1:0 -httpwait` and
// scrapes the plane while it is held open: /healthz answers ok, /metrics
// is non-empty Prometheus text with the run's phase series, /progress is
// JSON reporting the whole region done.
func TestRunHTTPPlaneServesLive(t *testing.T) {
	cfg := smallRun()
	cfg.httpAddr = "127.0.0.1:0"
	cfg.httpWait = 2 * time.Second
	var buf syncBuffer
	errc := make(chan error, 1)
	go func() { errc <- run(context.Background(), cfg, &buf) }()

	// The plane outlives the run by -httpwait; find its address.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("plane address never announced:\n%s", buf.String())
		}
		for _, line := range strings.Split(buf.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "observability plane listening on "); ok {
				base = strings.TrimSuffix(strings.Fields(rest)[0], "/")
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Wait for the run itself to finish (the hold message) so /progress
	// reads the final state.
	for !strings.Contains(buf.String(), "holding observability plane") {
		if time.Now().After(deadline) {
			t.Fatalf("run never finished:\n%s", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d\n%s", path, resp.StatusCode, body)
		}
		return string(body)
	}
	if got := get("/healthz"); !strings.Contains(got, "ok") {
		t.Errorf("/healthz = %q", got)
	}
	metricsBody := get("/metrics")
	for _, series := range []string{
		"cncount_phase_seconds_total{phase=\"core.count\"}",
		"cncount_sched_worker_units_total",
		"cncount_progress_remaining_units 0",
		"cncount_build_info",
	} {
		if !strings.Contains(metricsBody, series) {
			t.Errorf("/metrics missing %q:\n%s", series, metricsBody)
		}
	}
	var status struct {
		TotalUnits     int64 `json:"total_units"`
		RemainingUnits int64 `json:"remaining_units"`
		Runs           uint64
	}
	if err := json.Unmarshal([]byte(get("/progress")), &status); err != nil {
		t.Fatalf("/progress is not JSON: %v", err)
	}
	if status.TotalUnits == 0 || status.RemainingUnits != 0 {
		t.Errorf("/progress after run = %+v, want done", status)
	}
	if got := get("/debug/pprof/cmdline"); got == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
	tsBody := get("/timeseries.json")
	if err := obs.ValidateTimeseries([]byte(tsBody)); err != nil {
		t.Errorf("/timeseries.json invalid: %v", err)
	}
	if !strings.Contains(tsBody, `"schema": "cncount-timeseries/v1"`) &&
		!strings.Contains(tsBody, `"schema":"cncount-timeseries/v1"`) {
		t.Errorf("/timeseries.json lacks the schema marker:\n%s", tsBody)
	}
	if got := get("/dashboard"); !strings.Contains(got, "cncount dashboard") {
		t.Error("/dashboard lacks the embedded page")
	}

	// /trace.json is 404 without -trace.
	resp, err := http.Get(base + "/trace.json")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/trace.json without -trace: status %d, want 404", resp.StatusCode)
	}

	// Wait out the hold so the deferred plane shutdown is exercised too.
	if err := <-errc; err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
}

// TestRunTimeoutFlushesAndFails: an expired -timeout aborts the run with
// a typed cancellation, yet the -metrics snapshot is still flushed so the
// abort is diagnosable — the acceptance contract for interrupted runs.
func TestRunTimeoutFlushesAndFails(t *testing.T) {
	cfg := smallRun()
	cfg.timeout = time.Nanosecond // expires before the count starts
	cfg.metricsOut = filepath.Join(t.TempDir(), "metrics.json")
	var buf bytes.Buffer
	err := run(context.Background(), cfg, &buf)
	if err == nil {
		t.Fatalf("timed-out run returned nil\noutput:\n%s", buf.String())
	}
	if !errors.Is(err, cncount.ErrDeadline) {
		t.Errorf("err = %v, want ErrDeadline", err)
	}
	b, rerr := os.ReadFile(cfg.metricsOut)
	if rerr != nil {
		t.Fatalf("timed-out run did not flush metrics: %v", rerr)
	}
	var snap map[string]any
	if jerr := json.Unmarshal(b, &snap); jerr != nil {
		t.Fatalf("flushed metrics not JSON: %v", jerr)
	}
}

// TestRunCanceledContext: cancellation through the caller's context (the
// SIGINT path minus the signal) fails the run with ErrCanceled and still
// flushes the trace file.
func TestRunCanceledContext(t *testing.T) {
	cfg := smallRun()
	cfg.traceOut = filepath.Join(t.TempDir(), "trace.json")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	err := run(ctx, cfg, &buf)
	if !errors.Is(err, cncount.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled\noutput:\n%s", err, buf.String())
	}
	if _, serr := os.Stat(cfg.traceOut); serr != nil {
		t.Errorf("canceled run did not flush trace: %v", serr)
	}
}

// TestRunWatchdogFlagHealthy: a healthy run under -watchdog completes
// normally — the watchdog must never abort a live run.
func TestRunWatchdogFlagHealthy(t *testing.T) {
	cfg := smallRun()
	cfg.watchdog = 30 * time.Second
	var buf bytes.Buffer
	if err := run(context.Background(), cfg, &buf); err != nil {
		t.Fatalf("run under watchdog: %v\noutput:\n%s", err, buf.String())
	}
}

// TestRunMemoryBudgetDowngrade: -membudget 1 forces the BMP→MPS
// downgrade and the run reports it and still succeeds.
func TestRunMemoryBudgetDowngrade(t *testing.T) {
	cfg := smallRun()
	cfg.memBudget = 1
	var buf bytes.Buffer
	if err := run(context.Background(), cfg, &buf); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "downgraded to MPS") {
		t.Errorf("downgrade not reported:\n%s", buf.String())
	}
}

// TestSIGINTMidRunFlushesAndExitsNonZero pins the end-to-end signal
// contract on the real binary: SIGINT mid-count exits non-zero after
// flushing the final metrics snapshot.
func TestSIGINTMidRunFlushesAndExitsNonZero(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and interrupts the real binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "cnc")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	metricsPath := filepath.Join(dir, "metrics.json")
	cmd := exec.Command(bin,
		"-profile", "TW", "-scale", "2", "-algo", "m", "-threads", "2",
		"-reorder=false", "-metrics", metricsPath)
	var out syncBuffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait until the count phase has started (the skew line prints just
	// before Count), then interrupt mid-run.
	deadline := time.Now().Add(30 * time.Second)
	for !strings.Contains(out.String(), "skewed intersections") {
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("count never started:\n%s", out.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond) // well inside the ~3s count
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	if err == nil {
		t.Fatalf("SIGINT-ed run exited zero:\n%s", out.String())
	}
	var snap map[string]any
	b, rerr := os.ReadFile(metricsPath)
	if rerr != nil {
		t.Fatalf("no final metrics snapshot after SIGINT: %v\noutput:\n%s", rerr, out.String())
	}
	if jerr := json.Unmarshal(b, &snap); jerr != nil {
		t.Fatalf("flushed snapshot not JSON: %v", jerr)
	}
	if !strings.Contains(out.String(), "unprocessed") {
		t.Errorf("no partial-progress report:\n%s", out.String())
	}
}
