package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"maps"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cncount"
	"cncount/internal/benchfmt"
	"cncount/internal/chaos"
	"cncount/internal/logx"
	"cncount/internal/metrics"
)

// tinyRun is an appConfig whose matrix finishes in well under a second.
func tinyRun(out string) appConfig {
	return appConfig{
		label: "test", out: out,
		profiles: "WI", scale: 0.05,
		algos: "mps,bmp", workers: "1,2", reps: 1,
		threshold: 0.10,
	}
}

// captureLog points cfg's structured logger at a goroutine-safe buffer
// in text format and returns the buffer.
func captureLog(t *testing.T, cfg *appConfig) *syncBuffer {
	t.Helper()
	buf := &syncBuffer{}
	logger, err := logx.New(buf, "text", "benchrun")
	if err != nil {
		t.Fatal(err)
	}
	cfg.logger = logger
	return buf
}

// TestRunWritesSchemaVersionedReport drives the harness end to end and
// checks the written file loads under the schema gate with a full matrix.
func TestRunWritesSchemaVersionedReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	var buf bytes.Buffer
	if err := run(context.Background(), tinyRun(path), &buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	rep, err := benchfmt.LoadFile(path)
	if err != nil {
		t.Fatalf("written report fails schema load: %v", err)
	}
	if rep.Schema != benchfmt.Schema || rep.Label != "test" {
		t.Errorf("header = %q/%q", rep.Schema, rep.Label)
	}
	if len(rep.Results) != 4 { // 1 profile × 2 algos × 2 worker counts
		t.Fatalf("results = %d, want 4", len(rep.Results))
	}
	seen := map[benchfmt.Key]bool{}
	for _, r := range rep.Results {
		seen[r.Key()] = true
		if r.NsPerEdge <= 0 || r.ElapsedNanos <= 0 || r.Edges <= 0 {
			t.Errorf("%v: empty measurement %+v", r.Key(), r)
		}
		if r.Workers == 1 && r.SpeedupVs1 != 1.0 {
			t.Errorf("%v: speedup vs itself = %g, want 1", r.Key(), r.SpeedupVs1)
		}
		if r.Counters["core.edges_scanned"] == 0 {
			t.Errorf("%v: counters not captured", r.Key())
		}
	}
	if len(seen) != 4 {
		t.Errorf("duplicate cells: %v", seen)
	}
	if rep.Manifest == nil {
		t.Fatal("report carries no manifest")
	}
	if rep.Manifest.GoVersion == "" || rep.Manifest.GOMAXPROCS < 1 {
		t.Errorf("manifest environment empty: %+v", rep.Manifest)
	}
	for key, want := range map[string]string{
		"harness": "benchrun", "profiles": "WI", "workers": "1,2", "reps": "1",
	} {
		if got := rep.Manifest.Config[key]; got != want {
			t.Errorf("manifest config %s = %q, want %q", key, got, want)
		}
	}
}

// TestRunEmitsHeartbeats checks each matrix cell logs structured
// started/finished heartbeat events so a long run redirected to a file
// stays watchable on stderr.
func TestRunEmitsHeartbeats(t *testing.T) {
	cfg := tinyRun(filepath.Join(t.TempDir(), "out.json"))
	logBuf := captureLog(t, &cfg)
	if err := run(context.Background(), cfg, io.Discard); err != nil {
		t.Fatal(err)
	}
	logs := logBuf.String()
	for _, want := range []string{
		`msg="cell started"`, `msg="cell finished"`,
		"cell=WI/MPS/w1", "cell=WI/BMP/w2",
		"ns_per_edge=", "component=benchrun",
	} {
		if !strings.Contains(logs, want) {
			t.Errorf("heartbeat %q missing in:\n%s", want, logs)
		}
	}
}

// TestRunEmitsJSONHeartbeats checks -logfmt json makes every heartbeat
// one parseable JSON record, and a bad -logfmt fails the run.
func TestRunEmitsJSONHeartbeats(t *testing.T) {
	cfg := tinyRun(filepath.Join(t.TempDir(), "out.json"))
	cfg.logFormat = "yaml"
	if err := run(context.Background(), cfg, io.Discard); err == nil {
		t.Error("unknown -logfmt accepted")
	}

	cfg = tinyRun(filepath.Join(t.TempDir(), "out.json"))
	logBuf := &syncBuffer{}
	logger, err := logx.New(logBuf, "json", "benchrun")
	if err != nil {
		t.Fatal(err)
	}
	cfg.logger = logger
	if err := run(context.Background(), cfg, io.Discard); err != nil {
		t.Fatal(err)
	}
	started := 0
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, line)
		}
		if rec["msg"] == "cell started" {
			started++
			if rec["cell"] == nil || rec["reps"] == nil {
				t.Errorf("started event lacks attrs: %v", rec)
			}
		}
	}
	if started != 4 {
		t.Errorf("started events = %d, want 4", started)
	}
}

// TestRunMultiPassMergesCells checks -passes repeats the matrix but the
// report still holds exactly one merged result per cell, with the pass
// count recorded in the manifest and per-pass heartbeats in the log.
func TestRunMultiPassMergesCells(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_passes.json")
	cfg := tinyRun(path)
	cfg.passes = 2
	logBuf := captureLog(t, &cfg)
	var buf bytes.Buffer
	if err := run(context.Background(), cfg, &buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	rep, err := benchfmt.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 4 { // 1 profile × 2 algos × 2 worker counts, merged
		t.Fatalf("results = %d, want 4 merged cells", len(rep.Results))
	}
	seen := map[benchfmt.Key]bool{}
	for _, r := range rep.Results {
		if seen[r.Key()] {
			t.Errorf("cell %v appears twice after merging", r.Key())
		}
		seen[r.Key()] = true
		if r.Failed || r.ElapsedNanos <= 0 {
			t.Errorf("%v: bad merged cell %+v", r.Key(), r)
		}
	}
	if got := rep.Manifest.Config["passes"]; got != "2" {
		t.Errorf("manifest passes = %q, want 2", got)
	}
	logs := logBuf.String()
	for _, want := range []string{
		"cell=WI/MPS/w1", "pass=1", "pass=2", "passes=2",
	} {
		if !strings.Contains(logs, want) {
			t.Errorf("heartbeat %q missing in:\n%s", want, logs)
		}
	}
}

// TestBaselineDiffWarnsOnManifestDivergence checks a cross-environment
// diff prints manifest warnings without failing the comparison.
func TestBaselineDiffWarnsOnManifestDivergence(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "BENCH_base.json")
	if err := run(context.Background(), tinyRun(basePath), io.Discard); err != nil {
		t.Fatal(err)
	}
	head, err := benchfmt.LoadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	head.Label = "head"
	head.Manifest.VCSRevision = "0000000000000000000000000000000000000000"
	head.Manifest.GOMAXPROCS++
	headPath := filepath.Join(dir, "BENCH_head.json")
	if err := benchfmt.WriteFile(headPath, head); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	cfg := appConfig{baseline: basePath, input: headPath, threshold: 0.10}
	if err := run(context.Background(), cfg, &buf); err != nil {
		t.Fatalf("divergence warnings failed the diff: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "warning: manifests diverge on gomaxprocs") ||
		!strings.Contains(out, "vcs_revision") {
		t.Errorf("divergence warnings missing:\n%s", out)
	}
	if !strings.Contains(out, "no regressions") {
		t.Errorf("diff verdict missing:\n%s", out)
	}
}

// TestRunHTTPPlaneServes checks -http mounts the plane for the duration
// of the run: the report still writes, and the harness logs the bound
// address. (Endpoint behavior itself is covered in internal/obs.)
func TestRunHTTPPlaneServes(t *testing.T) {
	cfg := tinyRun(filepath.Join(t.TempDir(), "out.json"))
	cfg.httpAddr = "127.0.0.1:0"
	logBuf := captureLog(t, &cfg)
	if err := run(context.Background(), cfg, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(logBuf.String(), "observability plane listening on") {
		t.Errorf("plane address not logged:\n%s", logBuf.String())
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing log output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestBaselineDiffDetectsInjectedRegression writes a report, injects a
// past-threshold slowdown into a copy, and checks the diff run fails.
func TestBaselineDiffDetectsInjectedRegression(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "BENCH_base.json")
	var buf bytes.Buffer
	if err := run(context.Background(), tinyRun(basePath), &buf); err != nil {
		t.Fatal(err)
	}

	head, err := benchfmt.LoadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	head.Label = "head"
	head.Results[0].NsPerEdge *= 1.5 // +50% ≫ 10% threshold
	headPath := filepath.Join(dir, "BENCH_head.json")
	if err := benchfmt.WriteFile(headPath, head); err != nil {
		t.Fatal(err)
	}

	cfg := appConfig{baseline: basePath, input: headPath, threshold: 0.10}
	buf.Reset()
	err = run(context.Background(), cfg, &buf)
	if err == nil {
		t.Fatalf("injected regression passed the diff:\n%s", buf.String())
	}
	if !strings.Contains(err.Error(), "regressed") {
		t.Errorf("unexpected error: %v", err)
	}
	if !strings.Contains(buf.String(), "REGRESSED") {
		t.Errorf("regressed cell not reported:\n%s", buf.String())
	}
}

// TestBaselineDiffIdenticalPasses diffs a report against itself.
func TestBaselineDiffIdenticalPasses(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_base.json")
	if err := run(context.Background(), tinyRun(path), io.Discard); err != nil {
		t.Fatal(err)
	}
	cfg := appConfig{baseline: path, input: path, threshold: 0.10}
	var buf bytes.Buffer
	if err := run(context.Background(), cfg, &buf); err != nil {
		t.Fatalf("self-diff failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "no regressions") {
		t.Errorf("verdict missing:\n%s", buf.String())
	}
}

// TestRunRejectsBadFlags covers the flag validation paths.
func TestRunRejectsBadFlags(t *testing.T) {
	for name, mutate := range map[string]func(*appConfig){
		"bad algo":     func(c *appConfig) { c.algos = "quantum" },
		"bad workers":  func(c *appConfig) { c.workers = "0" },
		"empty algos":  func(c *appConfig) { c.algos = "," },
		"zero reps":    func(c *appConfig) { c.reps = 0 },
		"bad profile":  func(c *appConfig) { c.profiles = "NOPE" },
		"missing base": func(c *appConfig) { c.baseline = "/nonexistent/b.json" },
	} {
		cfg := tinyRun(filepath.Join(t.TempDir(), "out.json"))
		mutate(&cfg)
		if err := run(context.Background(), cfg, io.Discard); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestRunCellTimeoutRecordsFailedCells forces every cell attempt to time
// out: each cell must be retried once, then recorded as failed (with the
// error string) in the written report, the matrix must still cover every
// cell, and the run must exit non-zero because cells failed.
func TestRunCellTimeoutRecordsFailedCells(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_fail.json")
	cfg := tinyRun(path)
	cfg.cellTimeout = 1 * time.Nanosecond
	logBuf := captureLog(t, &cfg)
	var buf bytes.Buffer
	err := run(context.Background(), cfg, &buf)
	if err == nil || !strings.Contains(err.Error(), "cells failed") {
		t.Fatalf("run err = %v, want failed-cell verdict\n%s", err, buf.String())
	}
	if !strings.Contains(err.Error(), "4 of 4") {
		t.Errorf("verdict = %v, want all 4 cells failed", err)
	}
	if !strings.Contains(logBuf.String(), "retrying once") {
		t.Errorf("retry heartbeat missing:\n%s", logBuf.String())
	}

	rep, lerr := benchfmt.LoadFile(path)
	if lerr != nil {
		t.Fatalf("failed-cell report not written: %v", lerr)
	}
	if len(rep.Results) != 4 {
		t.Fatalf("results = %d, want all 4 cells recorded", len(rep.Results))
	}
	for _, r := range rep.Results {
		if !r.Failed {
			t.Errorf("%v: not marked failed: %+v", r.Key(), r)
		}
		if !strings.Contains(r.Error, "deadline") && !strings.Contains(r.Error, "canceled") {
			t.Errorf("%v: error string %q lacks cause", r.Key(), r.Error)
		}
		if r.Graph == "" || r.Algo == "" {
			t.Errorf("failed cell lost identity: %+v", r)
		}
	}
	if !strings.Contains(buf.String(), "FAILED") {
		t.Errorf("failed cells not reported on stdout:\n%s", buf.String())
	}
}

// TestRunTimeoutAbortsMatrixButWritesPartialReport cancels the whole
// invocation up front: the matrix aborts rather than grinding through
// cells, yet a (possibly empty) report is still written and the error
// names the abort.
func TestRunTimeoutAbortsMatrixButWritesPartialReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_abort.json")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the first cell
	err := run(ctx, tinyRun(path), io.Discard)
	if err == nil || !strings.Contains(err.Error(), "matrix aborted") {
		t.Fatalf("run err = %v, want matrix abort", err)
	}
	rep, lerr := benchfmt.LoadFile(path)
	if lerr != nil {
		t.Fatalf("partial report not written: %v", lerr)
	}
	if len(rep.Results) != 0 {
		t.Errorf("pre-canceled run measured %d cells", len(rep.Results))
	}
}

// TestBaselineDiffFlagsFailedHeadCells injects a failed cell into a head
// report copy and checks the diff run fails and names it.
func TestBaselineDiffFlagsFailedHeadCells(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "BENCH_base.json")
	if err := run(context.Background(), tinyRun(basePath), io.Discard); err != nil {
		t.Fatal(err)
	}
	head, err := benchfmt.LoadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	head.Label = "head"
	head.Results[0].Failed = true
	head.Results[0].Error = "injected failure"
	headPath := filepath.Join(dir, "BENCH_head.json")
	if err := benchfmt.WriteFile(headPath, head); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	cfg := appConfig{baseline: basePath, input: headPath, threshold: 0.10}
	err = run(context.Background(), cfg, &buf)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("failed head cell passed the diff: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "failed in head  REGRESSED") {
		t.Errorf("failed cell not reported:\n%s", buf.String())
	}
}

// TestRunOutputErrorExitsNonZero models a broken stdout pipe.
func TestRunOutputErrorExitsNonZero(t *testing.T) {
	cfg := tinyRun("-") // report to stdout, which fails immediately
	if err := run(context.Background(), cfg, failWriter{}); err == nil {
		t.Error("output write failure did not fail the run")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) {
	return 0, io.ErrClosedPipe
}

// TestRetrySurvivingAttemptOnlySampleSet is the regression test for the
// retry-once report semantics: when a cell's first attempt fails and the
// retry succeeds, the report cell must carry exactly the surviving
// attempt's sample set — one result for the cell key, not marked failed,
// with counters and attribution identical to a fault-free control run —
// and never a mixture of the failed and surviving attempts' metrics.
// The failure is forced by a deterministic chaos schedule (one planned
// panic on the first counting call) injected through the countFn seam.
func TestRetrySurvivingAttemptOnlySampleSet(t *testing.T) {
	base := func(out string) appConfig {
		return appConfig{
			label: "retry", out: out,
			profiles: "WI", scale: 0.05,
			algos: "adaptive", workers: "2", reps: 2,
			threshold: 0.10,
		}
	}

	// Control: the same cell with no faults.
	ctrlPath := filepath.Join(t.TempDir(), "BENCH_ctrl.json")
	if err := run(context.Background(), base(ctrlPath), io.Discard); err != nil {
		t.Fatalf("control run: %v", err)
	}
	ctrl, err := benchfmt.LoadFile(ctrlPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(ctrl.Results) != 1 {
		t.Fatalf("control results = %d, want 1", len(ctrl.Results))
	}

	// Chaos run: the injector's schedule fires one panic on counting call
	// index 0 (Steps=1 clamps the placement), i.e. the first attempt's
	// first rep. The seam converts the planned panic into the attempt
	// error a real mid-cell fault would produce.
	inj := chaos.New(chaos.Plan{Seed: 7, Steps: 1, Panics: 1})
	var calls atomic.Int64
	path := filepath.Join(t.TempDir(), "BENCH_retry.json")
	cfg := base(path)
	cfg.countFn = func(g *cncount.Graph, opts cncount.Options) (res *cncount.Result, err error) {
		calls.Add(1)
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("injected chaos fault: %v", p)
			}
		}()
		inj.Step()
		return cncount.Count(g, opts)
	}
	logBuf := captureLog(t, &cfg)
	if err := run(context.Background(), cfg, io.Discard); err != nil {
		t.Fatalf("run with retried cell must succeed, got: %v\n%s", err, logBuf.String())
	}
	if !strings.Contains(logBuf.String(), "retrying once") {
		t.Errorf("retry heartbeat missing:\n%s", logBuf.String())
	}
	// 1 failed call + 2 reps of the surviving attempt.
	if got := calls.Load(); got != 3 {
		t.Errorf("counting calls = %d, want 3 (1 failed + 2 surviving reps)", got)
	}

	rep, err := benchfmt.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 {
		t.Fatalf("results = %d, want exactly 1 for the retried cell", len(rep.Results))
	}
	got, want := rep.Results[0], ctrl.Results[0]
	if got.Failed {
		t.Fatalf("retried cell recorded as failed: %+v", got)
	}
	if got.Key() != want.Key() {
		t.Fatalf("cell key = %v, want %v", got.Key(), want.Key())
	}
	if got.ElapsedNanos <= 0 || got.NsPerEdge <= 0 {
		t.Errorf("surviving attempt lost its measurement: %+v", got)
	}
	// Deterministic counters must match the control exactly: any surplus
	// would be the failed attempt's work double-recorded into the cell.
	// Counters holding sampled wall-clock time (…_nanos_…) vary run to
	// run and are excluded, same as attribution nanos below.
	if g, w := workCounters(got.Counters), workCounters(want.Counters); !maps.Equal(g, w) {
		t.Errorf("retried cell counters = %v, want control %v", g, w)
	}
	// Attribution call counts likewise (sampled nanos are wall-clock and
	// excluded): compare total calls per (kernel, bucket).
	if g, w := attrCalls(got.Attribution), attrCalls(want.Attribution); !maps.Equal(g, w) {
		t.Errorf("retried cell attribution calls = %v, want control %v", g, w)
	}
}

// workCounters drops wall-clock-valued counters (key contains "nanos")
// and sampling-cadence counters (key contains "samples"): sampling is
// every-Nth-call per worker, so with >1 worker the sample total depends
// on how work stealing split the calls, not on the work done. Only the
// deterministic work counters remain for exact comparison.
func workCounters(c map[string]uint64) map[string]uint64 {
	out := map[string]uint64{}
	for k, v := range c {
		if !strings.Contains(k, "nanos") && !strings.Contains(k, "samples") {
			out[k] = v
		}
	}
	return out
}

// attrCalls flattens attribution rows into (scope/kernel/bucket) → calls.
func attrCalls(rows []metrics.KernelAttr) map[string]uint64 {
	out := map[string]uint64{}
	for _, r := range rows {
		for _, b := range r.Buckets {
			out[fmt.Sprintf("%s/%s/%d", r.Scope, r.Kernel, b.MinDegLen)] += b.Count
		}
	}
	return out
}

// TestRunIngestWritesReport drives -ingest end to end: the written
// report must carry one "ingest" row per worker count with a positive
// updates/sec, and its manifest must record the ingest shape so
// baseline diffs can check comparability.
func TestRunIngestWritesReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_ingest.json")
	cfg := appConfig{
		label: "ingest-test", out: path,
		profiles: "WI", scale: 0.05,
		algos: "mps", workers: "1,2", reps: 1,
		ingest: true, batches: 10, batchOps: 8, fsync: "off",
	}
	captureLog(t, &cfg)
	var buf bytes.Buffer
	if err := run(context.Background(), cfg, &buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	rep, err := benchfmt.LoadFile(path)
	if err != nil {
		t.Fatalf("written report fails schema load: %v", err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("results = %d, want 2 (1 profile x 2 worker counts)", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.Algo != "ingest" {
			t.Errorf("%v: algo = %q, want ingest", r.Key(), r.Algo)
		}
		if r.UpdatesPerSec <= 0 || r.NsPerEdge <= 0 || r.ElapsedNanos <= 0 {
			t.Errorf("%v: empty ingest measurement %+v", r.Key(), r)
		}
		if r.Edges != 10*8 {
			t.Errorf("%v: ops = %d, want 80", r.Key(), r.Edges)
		}
	}
	for key, want := range map[string]string{
		"mode": "ingest", "batches": "10", "batchops": "8", "fsync": "off",
	} {
		if got := rep.Manifest.Config[key]; got != want {
			t.Errorf("manifest config %s = %q, want %q", key, got, want)
		}
	}
}
