// Command benchrun is the continuous benchmark harness: it runs a fixed
// matrix of generated graphs × counting algorithms × worker counts,
// records ns/edge, speedup-vs-1-worker, scheduler imbalance and kernel
// counters, and writes a schema-versioned BENCH_<label>.json report
// (internal/benchfmt). In -baseline mode it instead diffs two reports and
// exits non-zero when any matrix cell slowed past the threshold.
//
// Usage:
//
//	benchrun -label local                        # run matrix, write BENCH_local.json
//	benchrun -profiles WI,LJ -scale 0.2 -workers 1,2,4 -reps 3
//	benchrun -algos mps,bmp,adaptive -passes 3   # interleave 3 full-matrix passes
//	benchrun -baseline BENCH_main.json -input BENCH_pr.json -threshold 0.10
//	benchrun -baseline BENCH_main.json           # run matrix, diff against base
//	benchrun -http 127.0.0.1:8080                # watch the live matrix at /dashboard
//	benchrun -logfmt json 2>run.jsonl            # machine-tailable heartbeat events
//	benchrun -ingest -label ingest               # streaming-ingest matrix: updates/sec
//	benchrun -ingest -fsync off -batches 500     # ingest without durability, longer stream
//
// benchrun exits 0 only when the whole run succeeded and, in -baseline
// mode, no regression exceeded the threshold.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"cncount"
	"cncount/internal/benchfmt"
	"cncount/internal/logx"
	"cncount/internal/metrics"
	"cncount/internal/obs"
)

// appConfig mirrors the flag set so the whole run is testable without
// touching globals or os.Exit.
type appConfig struct {
	label     string
	out       string
	profiles  string
	scale     float64
	algos     string
	workers   string
	reps      int
	passes    int
	baseline  string
	input     string
	threshold float64
	httpAddr  string
	// ingest switches the harness to the streaming-ingest matrix:
	// batches × batchOps edge mutations per cell through the WAL (under
	// the fsync policy) and the batched incremental repair.
	ingest   bool
	batches  int
	batchOps int
	fsync    string
	// timeout bounds the whole invocation; cellTimeout bounds each cell
	// attempt (a cell gets two attempts before it is recorded as failed).
	timeout     time.Duration
	cellTimeout time.Duration
	logFormat   string
	// logger receives the structured heartbeat events (cell started /
	// finished, retries, plane lifecycle). run() defaults a nil logger to
	// stderr in cfg.logFormat, so test call sites need not set it.
	logger *slog.Logger
	// countFn abstracts the counting call so tests can inject faults into
	// individual cell attempts (e.g. a chaos-driven failure on the first
	// attempt to exercise the retry path). nil means cncount.Count.
	countFn func(g *cncount.Graph, opts cncount.Options) (*cncount.Result, error)
}

// count dispatches to the injected counting function, if any.
func (cfg appConfig) count(g *cncount.Graph, opts cncount.Options) (*cncount.Result, error) {
	if cfg.countFn != nil {
		return cfg.countFn(g, opts)
	}
	return cncount.Count(g, opts)
}

// resolvedConfig records the harness knobs that shape the measurement,
// for the report manifest (and hence for -baseline comparability checks).
func (cfg appConfig) resolvedConfig() map[string]string {
	m := map[string]string{
		"harness":  "benchrun",
		"label":    cfg.label,
		"profiles": cfg.profiles,
		"scale":    strconv.FormatFloat(cfg.scale, 'g', -1, 64),
		"algos":    cfg.algos,
		"workers":  cfg.workers,
		"reps":     strconv.Itoa(cfg.reps),
		"passes":   strconv.Itoa(max(cfg.passes, 1)),
	}
	if cfg.ingest {
		m["mode"] = "ingest"
		m["batches"] = strconv.Itoa(cfg.batches)
		m["batchops"] = strconv.Itoa(cfg.batchOps)
		m["fsync"] = cfg.fsync
	}
	return m
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchrun: ")

	var cfg appConfig
	flag.StringVar(&cfg.label, "label", "local", "report label (names the default output file)")
	flag.StringVar(&cfg.out, "out", "", `output path (default "BENCH_<label>.json"; "-" = stdout)`)
	flag.StringVar(&cfg.profiles, "profiles", "WI,OR", "comma-separated dataset profiles to run")
	flag.Float64Var(&cfg.scale, "scale", 0.2, "profile scale for every graph in the matrix")
	flag.StringVar(&cfg.algos, "algos", "mps,bmp", "comma-separated algorithms (m, mps, bmp, bmprf, adaptive)")
	flag.StringVar(&cfg.workers, "workers", "1,2,4", "comma-separated worker counts")
	flag.IntVar(&cfg.reps, "reps", 3, "repetitions per cell (best is reported)")
	flag.IntVar(&cfg.passes, "passes", 1, "full-matrix passes; each cell reports its best across passes x reps, interleaving cells across time so slow machine drift cannot bias one algorithm")
	flag.StringVar(&cfg.baseline, "baseline", "", "diff mode: baseline BENCH_*.json to compare against")
	flag.StringVar(&cfg.input, "input", "", "diff mode: head BENCH_*.json (empty = run the matrix)")
	flag.Float64Var(&cfg.threshold, "threshold", 0.10, "relative ns/edge slowdown that fails the diff")
	flag.StringVar(&cfg.httpAddr, "http", "", "serve the observability plane (/metrics, /progress, ...) on this address while the matrix runs")
	flag.BoolVar(&cfg.ingest, "ingest", false, "run the streaming-ingest matrix (WAL append + batched repair) instead of the counting matrix; reports updates/sec")
	flag.IntVar(&cfg.batches, "batches", 200, "ingest mode: update batches per cell")
	flag.IntVar(&cfg.batchOps, "batchops", 64, "ingest mode: edge mutations per batch")
	flag.StringVar(&cfg.fsync, "fsync", "batch", "ingest mode: WAL fsync policy (batch, interval, off)")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "abort the whole run after this long (0 = no limit)")
	flag.DurationVar(&cfg.cellTimeout, "celltimeout", 0, "time limit per cell attempt; a cell is retried once, then recorded as failed (0 = no limit)")
	flag.StringVar(&cfg.logFormat, "logfmt", "text", "log output format: "+logx.Formats)
	flag.Parse()

	// SIGINT/SIGTERM cancel the matrix cooperatively: the current cell's
	// counting run stops at the next task boundary, the partially filled
	// report is still written, and the exit code is non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, cfg, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// liveObs is the optional observability hookup shared across matrix
// cells when -http is set: one Progress spanning every cell's parallel
// region, and the collector of the rep currently running so /metrics
// scrapes always see live tallies. A nil *liveObs disables both.
type liveObs struct {
	prog *cncount.Progress
	mc   atomic.Pointer[cncount.Metrics]
}

func (l *liveObs) progress() *cncount.Progress {
	if l == nil {
		return nil
	}
	return l.prog
}

func (l *liveObs) snapshot() metrics.Snapshot {
	if mc := l.mc.Load(); mc != nil {
		return mc.Snapshot()
	}
	return metrics.Snapshot{}
}

// run executes one harness invocation. Every failure — a bad flag, a
// cell recorded as failed, an aborted matrix, an output write error, or a
// past-threshold regression in -baseline mode — is returned so main can
// exit non-zero. A matrix aborted by -timeout or a signal still writes
// whatever cells it completed before returning the abort error.
func run(ctx context.Context, cfg appConfig, stdout io.Writer) error {
	logger := cfg.logger
	if logger == nil {
		var err error
		if logger, err = logx.New(os.Stderr, cfg.logFormat, "benchrun"); err != nil {
			return err
		}
	}
	out := &errWriter{w: stdout}
	manifest := cncount.NewManifest(cfg.resolvedConfig())

	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	// A run-scoped cancel guarantees ctx.Done() fires by the time run
	// returns, bounding the plane's drain watcher below.
	ctx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	var live *liveObs
	if cfg.httpAddr != "" {
		live = &liveObs{prog: cncount.NewProgress()}
		// The flight recorder spans every matrix cell: /timeseries.json and
		// /dashboard show the whole run's series, with region turnover at
		// each cell boundary.
		rec := obs.NewRecorder(obs.RecorderOptions{Progress: live.prog})
		rec.Start()
		defer rec.Stop()
		plane := obs.New(obs.Options{
			Snapshot: live.snapshot,
			Progress: live.prog,
			Recorder: rec,
			Manifest: &manifest,
			Logf:     logx.Printf(logger),
		})
		addr, err := plane.Start(cfg.httpAddr)
		if err != nil {
			return fmt.Errorf("observability plane: %w", err)
		}
		logger.Info("observability plane listening on http://"+addr.String()+"/", "addr", addr.String())
		// Flip /healthz to "draining" the moment the run is canceled, so
		// pollers see the shutdown before the listener goes away. The
		// watcher always exits: cancelRun fires when run returns.
		go func() {
			<-ctx.Done()
			plane.BeginDrain()
		}()
		defer func() {
			if err := plane.Close(); err != nil {
				logger.Error("observability plane shutdown failed", "err", err)
			}
		}()
	}

	if cfg.baseline != "" {
		if err := runDiff(ctx, cfg, out, manifest, live, logger); err != nil {
			return err
		}
		return out.err
	}

	var report *benchfmt.Report
	var runErr error
	if cfg.ingest {
		report, runErr = runIngest(ctx, cfg, out, manifest, logger)
	} else {
		report, runErr = runMatrix(ctx, cfg, out, manifest, live, logger)
	}
	if report == nil {
		return runErr
	}
	path := cfg.out
	if path == "" {
		path = "BENCH_" + cfg.label + ".json"
	}
	if path == "-" {
		if err := report.Write(out); err != nil {
			return err
		}
	} else {
		if err := benchfmt.WriteFile(path, report); err != nil {
			return fmt.Errorf("writing report: %w", err)
		}
		fmt.Fprintf(out, "wrote %s (%d results)\n", path, len(report.Results))
	}
	if runErr != nil {
		return runErr
	}
	if n := countFailed(report); n > 0 {
		return fmt.Errorf("%d of %d cells failed", n, len(report.Results))
	}
	return out.err
}

// countFailed tallies cells recorded as failed in a report.
func countFailed(r *benchfmt.Report) int {
	n := 0
	for _, res := range r.Results {
		if res.Failed {
			n++
		}
	}
	return n
}

// runDiff loads base and head (running the matrix when no -input file is
// given), prints the comparison, and fails on regressions. Manifest
// divergence between the reports is warned about but never fails the
// diff: comparing across revisions is the point of -baseline, comparing
// across machines or toolchains usually is not.
func runDiff(ctx context.Context, cfg appConfig, out *errWriter, manifest cncount.Manifest, live *liveObs, logger *slog.Logger) error {
	base, err := benchfmt.LoadFile(cfg.baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var head *benchfmt.Report
	if cfg.input != "" {
		head, err = benchfmt.LoadFile(cfg.input)
		if err != nil {
			return fmt.Errorf("input: %w", err)
		}
	} else {
		head, err = runMatrix(ctx, cfg, out, manifest, live, logger)
		if err != nil {
			return err
		}
	}

	for _, w := range benchfmt.ManifestWarnings(base, head) {
		fmt.Fprintf(out, "warning: %s\n", w)
	}
	d := benchfmt.Diff(base, head, cfg.threshold)
	fmt.Fprintf(out, "diff %s (base) vs %s (head), threshold +%.0f%%\n",
		base.Label, head.Label, 100*cfg.threshold)
	for _, delta := range d.Deltas {
		status := "ok"
		if delta.Regressed {
			status = "REGRESSED"
		}
		fmt.Fprintf(out, "  %-16s %8.2f -> %8.2f ns/edge  (%+6.1f%%)  %s\n",
			delta.Key, delta.BaseNsPerEdge, delta.HeadNsPerEdge,
			100*(delta.Ratio-1), status)
	}
	for _, k := range d.MissingInHead {
		fmt.Fprintf(out, "  %-16s missing in head  REGRESSED\n", k)
	}
	for _, k := range d.FailedInHead {
		fmt.Fprintf(out, "  %-16s failed in head  REGRESSED\n", k)
	}
	for _, k := range d.MissingInBase {
		fmt.Fprintf(out, "  %-16s new in head\n", k)
	}
	if d.Regressions > 0 {
		return fmt.Errorf("%d of %d cells regressed past +%.0f%%",
			d.Regressions, len(base.Results), 100*cfg.threshold)
	}
	fmt.Fprintf(out, "no regressions across %d cells\n", len(d.Deltas))
	return nil
}

// cellKey identifies one matrix cell when merging results across passes.
type cellKey struct {
	profile string
	algo    int // index into the algo list, not the enum
	workers int
}

// runMatrix executes the benchmark matrix and assembles the report.
// Graphs are generated and degree-reordered once per profile; each cell
// runs cfg.reps times and keeps the best elapsed time, as the paper's
// methodology (and benchmarking practice generally) prescribes for
// noise-prone wall-clock measurements.
//
// With -passes > 1 the whole matrix repeats and every cell keeps its
// best result across passes. A single sequential sweep measures each
// cell in a different slice of wall-clock time, so slow machine drift
// (a backup job, thermal throttling) lands on whichever algorithm was
// running then and skews the comparison; interleaved passes give every
// cell a shot at every time slice, so the per-cell minimum converges on
// the machine's quiet-state number for all algorithms alike.
func runMatrix(ctx context.Context, cfg appConfig, out *errWriter, manifest cncount.Manifest, live *liveObs, logger *slog.Logger) (*benchfmt.Report, error) {
	profiles, err := splitList(cfg.profiles)
	if err != nil {
		return nil, err
	}
	algoNames, err := splitList(cfg.algos)
	if err != nil {
		return nil, err
	}
	algos := make([]cncount.Algorithm, len(algoNames))
	for i, name := range algoNames {
		if algos[i], err = parseAlgo(name); err != nil {
			return nil, err
		}
	}
	workers, err := splitInts(cfg.workers)
	if err != nil {
		return nil, err
	}
	if cfg.reps < 1 {
		return nil, fmt.Errorf("reps %d < 1", cfg.reps)
	}
	// The zero value means "not set": configs built in code (tests) skip
	// the flag default, and a matrix always runs at least one pass.
	passes := cfg.passes
	if passes < 1 {
		passes = 1
	}

	report := &benchfmt.Report{
		Schema:     benchfmt.Schema,
		Label:      cfg.label,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Manifest:   &manifest,
	}
	// Generate and reorder every profile's graph up front, once: each
	// cell measures counting on the same degree-descending graph, not
	// the preprocessing, and later passes reuse the graphs.
	graphs := make([]*cncount.Graph, len(profiles))
	for i, profile := range profiles {
		g, err := cncount.GenerateProfile(profile, cfg.scale)
		if err != nil {
			return nil, err
		}
		graphs[i], _ = cncount.ReorderByDegree(g)
	}

	best := make(map[cellKey]*benchfmt.Result)
	// emit flushes the merged per-cell bests into the report in the
	// deterministic (profile, algo, workers) order regardless of how
	// many passes ran or where an abort struck, computing speedups from
	// the merged results so SpeedupVs1 compares best against best.
	emit := func() {
		for _, profile := range profiles {
			for ai := range algos {
				var one int64
				if r, ok := best[cellKey{profile, ai, 1}]; ok && !r.Failed {
					one = r.ElapsedNanos
				}
				for _, w := range workers {
					res, ok := best[cellKey{profile, ai, w}]
					if !ok {
						continue
					}
					if res.Failed {
						fmt.Fprintf(out, "%-4s %-6s w%-2d  FAILED: %s\n", profile, res.Algo, w, res.Error)
						report.Results = append(report.Results, *res)
						continue
					}
					if one > 0 && res.ElapsedNanos > 0 {
						res.SpeedupVs1 = float64(one) / float64(res.ElapsedNanos)
					}
					report.Results = append(report.Results, *res)
					fmt.Fprintf(out, "%-4s %-6s w%-2d  %9.2f ns/edge  speedup %.2fx  imbalance %.2f  steals %d\n",
						profile, res.Algo, w, res.NsPerEdge, res.SpeedupVs1, res.ImbalanceRatio, res.Steals)
				}
			}
		}
		report.CreatedUnix = time.Now().Unix()
	}

	for pass := 1; pass <= passes; pass++ {
		for pi, profile := range profiles {
			rg := graphs[pi]
			for ai, algo := range algos {
				for _, w := range workers {
					if err := ctx.Err(); err != nil {
						// The invocation itself was canceled (signal or
						// -timeout): stop scheduling cells, hand back what
						// completed so run can still write the partial report.
						emit()
						return report, fmt.Errorf("matrix aborted before cell %s/%s/w%d: %w", profile, algo, w, err)
					}
					// Heartbeat events go to the structured log (stderr by
					// default), not the report stream: a long matrix stays
					// watchable without polluting `-out -` JSON on stdout.
					cell := fmt.Sprintf("%s/%s/w%d", profile, algo, w)
					cellLog := logger.With("cell", cell)
					if passes > 1 {
						cellLog = cellLog.With("pass", pass, "passes", passes)
					}
					cellLog.Info("cell started", "reps", cfg.reps)
					cellStart := time.Now()
					res, err := runCellAttempts(ctx, cfg, rg, profile, algo, w, live, cellLog)
					if err != nil {
						emit()
						return report, fmt.Errorf("matrix aborted at cell %s/%s/w%d: %w", profile, algo, w, err)
					}
					res.Graph = profile
					res.Scale = cfg.scale
					key := cellKey{profile, ai, w}
					if res.Failed {
						// The cell failed both attempts for a reason of its
						// own (not a dying parent context): record it and move
						// on — one broken cell must not hide the rest of the
						// matrix, and a success in any other pass displaces
						// the failure.
						if _, ok := best[key]; !ok {
							best[key] = res
						}
						continue
					}
					cellLog.Info("cell finished",
						"elapsed", time.Since(cellStart).Round(time.Millisecond),
						"ns_per_edge", res.NsPerEdge)
					if old, ok := best[key]; !ok || old.Failed || res.ElapsedNanos < old.ElapsedNanos {
						best[key] = res
					}
				}
			}
		}
	}
	emit()
	return report, nil
}

// runCellAttempts gives a cell two chances before recording it as failed.
// A transient fault (one bad rep, one per-cell timeout) costs a retry; a
// second failure comes back as a Result with Failed set so the matrix
// continues. Only a dying parent context — the whole invocation canceled
// or timed out — returns an error, which aborts the matrix.
func runCellAttempts(ctx context.Context, cfg appConfig, rg *cncount.Graph, profile string, algo cncount.Algorithm, workers int, live *liveObs, cellLog *slog.Logger) (*benchfmt.Result, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		cellCtx, cancel := ctx, context.CancelFunc(func() {})
		if cfg.cellTimeout > 0 {
			cellCtx, cancel = context.WithTimeout(ctx, cfg.cellTimeout)
		}
		res, err := runCell(cellCtx, cfg, rg, algo, workers, live)
		cancel()
		if err == nil {
			return res, nil
		}
		if ctx.Err() != nil {
			return nil, err
		}
		lastErr = err
		if attempt == 0 {
			cellLog.Warn("cell attempt 1 failed; retrying once", "err", err)
		}
	}
	cellLog.Error("cell failed after retry", "err", lastErr)
	return &benchfmt.Result{
		Algo:    algo.String(),
		Workers: workers,
		Edges:   rg.NumEdges(),
		Reps:    cfg.reps,
		Failed:  true,
		Error:   lastErr.Error(),
	}, nil
}

// runCell measures one matrix cell: reps counting runs on the already
// reordered graph, keeping the best rep's numbers.
//
// Single-sample-set invariant: every measurement field of the returned
// Result (elapsed, counters, attribution, scheduler imbalance and
// quantiles) comes from ONE rep of ONE attempt — the surviving best.
// Each rep builds a complete candidate Result from its own metrics
// snapshot and the best is swapped wholesale; fields are never assigned
// piecemeal onto an accumulator. The old accumulator let a faster rep
// overwrite elapsed/counters while stale scheduler or attribution rows
// from an earlier (possibly later-failed-and-retried) rep survived in
// the cell, so a report mixed two attempts' sample sets. Pinned by
// TestRetrySurvivingAttemptOnlySampleSet.
func runCell(ctx context.Context, cfg appConfig, rg *cncount.Graph, algo cncount.Algorithm, workers int, live *liveObs) (*benchfmt.Result, error) {
	var best *benchfmt.Result
	for rep := 0; rep < cfg.reps; rep++ {
		mc := cncount.NewMetrics()
		if live != nil {
			live.mc.Store(mc)
		}
		r, err := cfg.count(rg, cncount.Options{
			Algorithm: algo,
			Threads:   workers,
			Reorder:   false, // measured graph is pre-reordered
			Metrics:   mc,
			Progress:  live.progress(),
			Context:   ctx,
		})
		if err != nil {
			// The whole attempt is discarded, completed reps included: the
			// caller either retries (a fresh runCell, fresh sample sets) or
			// records the cell as failed with zero measurement fields.
			return nil, err
		}
		snap := mc.Snapshot()
		cand := &benchfmt.Result{
			Algo:         algo.String(),
			Workers:      workers,
			Edges:        rg.NumEdges(),
			Reps:         cfg.reps,
			ElapsedNanos: r.Elapsed.Nanoseconds(),
			Counters:     snap.Counters,
			Attribution:  snap.Attribution,
		}
		if len(snap.Sched) > 0 {
			sc := snap.Sched[0]
			cand.ImbalanceRatio = sc.Imbalance.Ratio
			cand.MaxBusyNanos = sc.Imbalance.MaxBusyNanos
			cand.MeanBusyNanos = sc.Imbalance.MeanBusyNanos
			cand.TaskP50Nanos = sc.TaskNanos.P50Nanos
			cand.TaskP95Nanos = sc.TaskNanos.P95Nanos
			cand.TaskP99Nanos = sc.TaskNanos.P99Nanos
			cand.Steals = sc.Steals
			cand.StealNanos = sc.StealNanos
		}
		if best == nil || cand.ElapsedNanos < best.ElapsedNanos {
			best = cand
		}
	}
	if best.Edges > 0 {
		best.NsPerEdge = float64(best.ElapsedNanos) / float64(best.Edges)
	}
	return best, nil
}

func splitList(s string) ([]string, error) {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list %q", s)
	}
	return out, nil
}

func splitInts(s string) ([]int, error) {
	parts, err := splitList(s)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", p)
		}
		out[i] = n
	}
	return out, nil
}

func parseAlgo(s string) (cncount.Algorithm, error) {
	switch strings.ToLower(s) {
	case "m", "merge":
		return cncount.AlgoM, nil
	case "mps":
		return cncount.AlgoMPS, nil
	case "bmp":
		return cncount.AlgoBMP, nil
	case "bmprf", "bmp-rf", "rf":
		return cncount.AlgoBMPRF, nil
	case "adaptive", "adapt":
		return cncount.AlgoAdaptive, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q: valid names are m, mps, bmp, bmprf, adaptive", s)
	}
}

// errWriter latches the first write error so every ignored fmt.Fprintf
// result still surfaces as a non-zero exit at the end of the run.
type errWriter struct {
	w   io.Writer
	err error
}

func (w *errWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	n, err := w.w.Write(p)
	if err != nil {
		w.err = err
	}
	return n, err
}
