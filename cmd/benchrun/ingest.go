package main

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"runtime"
	"time"

	"cncount"
	"cncount/internal/benchfmt"
	"cncount/internal/dynamic"
	"cncount/internal/graph"
	"cncount/internal/wal"
)

// runIngest executes the streaming-ingest benchmark matrix: for each
// profile × worker-count cell it boots a dynamic graph from the counted
// CSR, then drives a deterministic stream of edge-mutation batches
// through the durable write path — WAL append under the configured
// fsync policy, then the batched incremental repair — and reports
// updates/sec alongside ns/op. The op stream is seeded per profile, so
// every worker count and rep of a profile ingests the identical batch
// sequence and "best of reps" compares like with like.
func runIngest(ctx context.Context, cfg appConfig, out *errWriter, manifest cncount.Manifest, logger *slog.Logger) (*benchfmt.Report, error) {
	profiles, err := splitList(cfg.profiles)
	if err != nil {
		return nil, err
	}
	workers, err := splitInts(cfg.workers)
	if err != nil {
		return nil, err
	}
	if cfg.reps < 1 {
		return nil, fmt.Errorf("reps %d < 1", cfg.reps)
	}
	if cfg.batches < 1 || cfg.batchOps < 1 || cfg.batchOps > wal.MaxBatchOps {
		return nil, fmt.Errorf("bad ingest shape: %d batches x %d ops", cfg.batches, cfg.batchOps)
	}
	syncPolicy, err := wal.ParseSyncPolicy(cfg.fsync)
	if err != nil {
		return nil, err
	}

	report := &benchfmt.Report{
		Schema:     benchfmt.Schema,
		Label:      cfg.label,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Manifest:   &manifest,
	}
	for pi, profile := range profiles {
		g, err := cncount.GenerateProfile(profile, cfg.scale)
		if err != nil {
			return nil, err
		}
		rg, _ := cncount.ReorderByDegree(g)
		// The boot count seeds the dynamic graph's maintained counts —
		// the same FromCSR path cncd takes before replaying its WAL.
		res, err := cfg.count(rg, cncount.Options{Threads: workers[len(workers)-1]})
		if err != nil {
			return nil, fmt.Errorf("boot count for %s: %w", profile, err)
		}
		stream := ingestStream(int64(pi+1), rg.NumVertices(), cfg.batches, cfg.batchOps)
		totalOps := int64(cfg.batches) * int64(cfg.batchOps)

		for _, w := range workers {
			if err := ctx.Err(); err != nil {
				return report, fmt.Errorf("ingest matrix aborted before cell %s/w%d: %w", profile, w, err)
			}
			cellLog := logger.With("cell", fmt.Sprintf("%s/ingest/w%d", profile, w))
			cellLog.Info("cell started", "batches", cfg.batches, "batch_ops", cfg.batchOps, "fsync", cfg.fsync)
			var best int64
			for rep := 0; rep < cfg.reps; rep++ {
				elapsed, err := ingestOnce(rg, res.Counts, stream, syncPolicy, w)
				if err != nil {
					return report, fmt.Errorf("cell %s/w%d: %w", profile, w, err)
				}
				if best == 0 || elapsed.Nanoseconds() < best {
					best = elapsed.Nanoseconds()
				}
			}
			row := benchfmt.Result{
				Graph:         profile,
				Scale:         cfg.scale,
				Algo:          "ingest",
				Workers:       w,
				Edges:         totalOps,
				Reps:          cfg.reps,
				ElapsedNanos:  best,
				NsPerEdge:     float64(best) / float64(totalOps),
				UpdatesPerSec: float64(totalOps) / (float64(best) / 1e9),
			}
			report.Results = append(report.Results, row)
			cellLog.Info("cell finished", "updates_per_sec", row.UpdatesPerSec)
			fmt.Fprintf(out, "%-4s ingest w%-2d  %9.2f ns/op  %10.0f updates/s  (fsync=%s)\n",
				profile, w, row.NsPerEdge, row.UpdatesPerSec, cfg.fsync)
		}
	}
	report.CreatedUnix = time.Now().Unix()
	return report, nil
}

// ingestOnce replays one full op stream through a fresh dynamic graph
// and a fresh WAL, returning the wall time of the durable apply loop
// (WAL append + batched repair; setup and teardown excluded).
func ingestOnce(rg *cncount.Graph, counts []uint32, stream [][]wal.Op, sync wal.SyncPolicy, workers int) (time.Duration, error) {
	dyn, err := dynamic.FromCSR(rg, counts)
	if err != nil {
		return 0, err
	}
	dir, err := os.MkdirTemp("", "benchrun-wal-")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	log, err := wal.Open(dir, wal.Options{Sync: sync})
	if err != nil {
		return 0, err
	}
	defer log.Close()

	start := time.Now()
	for _, ops := range stream {
		if _, err := log.Append(ops); err != nil {
			return 0, err
		}
		if _, err := dyn.ApplyBatch(toDynamicOps(ops), workers); err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start)
	return elapsed, log.Close()
}

// ingestStream draws a deterministic stream of edge-mutation batches:
// insert-biased random pairs, with deletes drawn from edges the stream
// itself inserted so a delete usually has something to remove.
func ingestStream(seed int64, numVertices, batches, batchOps int) [][]wal.Op {
	rng := rand.New(rand.NewSource(seed))
	var inserted [][2]uint32
	out := make([][]wal.Op, batches)
	for b := range out {
		ops := make([]wal.Op, batchOps)
		for i := range ops {
			if len(inserted) > 0 && rng.Intn(10) >= 7 {
				j := rng.Intn(len(inserted))
				e := inserted[j]
				inserted = append(inserted[:j], inserted[j+1:]...)
				ops[i] = wal.Op{Kind: wal.OpDelete, U: e[0], V: e[1]}
				continue
			}
			u := uint32(rng.Intn(numVertices))
			v := uint32(rng.Intn(numVertices - 1))
			if v >= u {
				v++
			}
			inserted = append(inserted, [2]uint32{u, v})
			ops[i] = wal.Op{Kind: wal.OpInsert, U: u, V: v}
		}
		out[b] = ops
	}
	return out
}

// toDynamicOps converts a WAL batch to the dynamic graph's op type.
func toDynamicOps(ops []wal.Op) []dynamic.Op {
	out := make([]dynamic.Op, len(ops))
	for i, op := range ops {
		out[i] = dynamic.Op{Kind: dynamic.OpKind(op.Kind), U: graph.VertexID(op.U), V: graph.VertexID(op.V)}
	}
	return out
}
