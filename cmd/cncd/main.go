// Command cncd is the resident counting service: it loads a graph once
// into an immutable in-memory CSR and serves common-neighbor queries
// against it over HTTP/JSON until terminated.
//
// Usage:
//
//	cncd -profile TW -scale 0.5 -listen 127.0.0.1:8080
//	cncd -graph graph.bin -listen :8080 -inflight 128 -cache 65536
//
// Endpoints (all GET, all JSON):
//
//	/v1/edge?u=&v=          |N(u) ∩ N(v)| for an existing edge (u,v)
//	/v1/pair?u=&v=          the intersection for any vertex pair
//	/v1/topk?u=&k=          top-k non-adjacent recommendations for u
//	/v1/count?algo=&workers= full all-edge recount on the resident graph
//	/v1/sample?n=           n edges spaced through the offset range
//	/v1/info                graph name, epoch, sizes, cache and gate state
//	/v1/update              POST: an edge-mutation batch (with -wal or -updates)
//
// With -wal DIR the daemon keeps a write-ahead update log: every
// /v1/update batch is validated, appended to the log (fsynced per
// -fsync), applied to an in-memory dynamic graph with maintained
// per-edge counts, and installed as a new epoch. On boot the log is
// replayed before updates re-enable — torn tails are truncated and
// tolerated, mid-log corruption fails startup with a typed error —
// while /healthz reports 503 "recovering" with live replay progress
// and queries keep serving the loaded graph. -updates alone enables
// the same endpoint memory-only (mutations are lost on restart).
//
// plus the observability plane (internal/obs) mounted on the same
// listener: /healthz, /metrics, /progress, /debug/pprof/, and the
// request inspector /debug/requests (+ .json) backed by the capture
// ring (-capture). Every response carries X-Request-Id, X-Trace-Id and
// a W3C traceparent continuing the caller's trace when one was sent;
// /metrics exposes RED request histograms; -accesslog emits one
// structured event per request; -watchdog/-bundledir arm the recount
// stall watchdog, whose reports name in-flight request IDs. Results are
// cached in an LRU keyed by (graph epoch, query); every response body
// carries the epoch it was computed under and the X-Cache header says
// HIT or MISS. Admission control bounds in-flight requests (-inflight),
// rejecting the excess with 429 + Retry-After, and every request runs
// under a deadline (-deadline, or the client's timeout_ms), which the
// counting runtime honors cooperatively mid-recount.
//
// On SIGTERM/SIGINT the daemon drains: /healthz flips to 503
// "draining", in-flight requests get -draingrace to finish, and the
// process exits 0 on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"cncount"
	"cncount/internal/dynamic"
	"cncount/internal/logx"
	"cncount/internal/metrics"
	"cncount/internal/obs"
	"cncount/internal/sched"
	"cncount/internal/serve"
	"cncount/internal/wal"
)

// appConfig mirrors the flag set so the whole daemon is testable
// without touching globals or os.Exit.
type appConfig struct {
	graphPath   string
	profile     string
	scale       float64
	listen      string
	opsListen   string
	inflight    int
	cacheSize   int
	deadline    time.Duration
	drainNotice time.Duration
	drainGrace  time.Duration
	threads     int
	logFormat   string
	capture     int
	accessLog   bool
	watchdog    time.Duration
	bundleDir   string
	walDir      string
	fsync       string
	fsyncEvery  time.Duration
	walSeg      int64
	updates     bool
	// logger receives structured lifecycle events; run() defaults a nil
	// logger to stderr in cfg.logFormat.
	logger *slog.Logger
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cncd: ")

	var cfg appConfig
	flag.StringVar(&cfg.graphPath, "graph", "", "graph file (text edge list, or binary CSR with .bin)")
	flag.StringVar(&cfg.profile, "profile", "", "generate a dataset profile instead: "+strings.Join(cncount.ProfileNames(), ", "))
	flag.Float64Var(&cfg.scale, "scale", 1.0, "profile scale (1.0 ≈ 1/1000 of the paper's dataset)")
	flag.StringVar(&cfg.listen, "listen", "127.0.0.1:8080", "address to serve /v1/* and the observability plane on")
	flag.StringVar(&cfg.opsListen, "opshttp", "", "optionally serve the observability plane on a second, ops-only address too")
	flag.IntVar(&cfg.inflight, "inflight", serve.DefaultMaxInFlight, "max in-flight query requests before 429")
	flag.IntVar(&cfg.cacheSize, "cache", serve.DefaultCacheEntries, "result cache capacity in entries (-1 disables)")
	flag.DurationVar(&cfg.deadline, "deadline", serve.DefaultRequestTimeout, "default per-request deadline (clients may override with timeout_ms)")
	flag.DurationVar(&cfg.drainNotice, "drainnotice", 0, "after SIGTERM, keep serving this long with /healthz at 503 so load balancers observe unreadiness before the listener stops accepting")
	flag.DurationVar(&cfg.drainGrace, "draingrace", 5*time.Second, "how long in-flight requests get to finish after SIGTERM")
	flag.IntVar(&cfg.threads, "threads", 0, "worker count for /v1/count recounts (0 = all cores)")
	flag.StringVar(&cfg.logFormat, "logfmt", "text", "log output format: "+logx.Formats)
	flag.IntVar(&cfg.capture, "capture", serve.DefaultCaptureSlowest, "requests retained by /debug/requests (slowest N plus recent errors; -1 disables capture)")
	flag.BoolVar(&cfg.accessLog, "accesslog", false, "emit one structured log event per request (endpoint, status, cache, duration, ids)")
	flag.DurationVar(&cfg.watchdog, "watchdog", 0, "declare a recount stalled when a worker heartbeat exceeds this age (0 disables the watchdog)")
	flag.StringVar(&cfg.bundleDir, "bundledir", "", "directory for stall diagnostic bundles (progress/metrics/trace JSON); empty logs the report only")
	flag.StringVar(&cfg.walDir, "wal", "", "write-ahead log directory: enables durable POST /v1/update and replays the log on boot")
	flag.StringVar(&cfg.fsync, "fsync", "batch", "WAL fsync policy: batch (every append), interval (at most every -fsyncevery), off")
	flag.DurationVar(&cfg.fsyncEvery, "fsyncevery", 100*time.Millisecond, "maximum fsync age under -fsync interval")
	flag.Int64Var(&cfg.walSeg, "walseg", 0, "WAL segment rotation size in bytes (0 = 64 MiB)")
	flag.BoolVar(&cfg.updates, "updates", false, "enable POST /v1/update without a WAL (memory-only: updates are lost on restart)")
	flag.Parse()

	if cfg.graphPath == "" && cfg.profile == "" {
		flag.Usage()
		os.Exit(2)
	}
	// The first SIGTERM/SIGINT starts the drain; a second signal kills
	// the process the hard way (NotifyContext restores default handling).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run loads the graph, serves until ctx is canceled, then drains and
// returns nil on a clean shutdown. Every failure — a bad flag, an
// unloadable graph, an unbindable address, an unclean drain — is
// returned so main can exit non-zero.
func run(ctx context.Context, cfg appConfig, stdout io.Writer) error {
	logger := cfg.logger
	if logger == nil {
		var err error
		if logger, err = logx.New(os.Stderr, cfg.logFormat, "cncd"); err != nil {
			return err
		}
	}
	logf := func(format string, args ...any) { logger.Info(fmt.Sprintf(format, args...)) }

	mc := metrics.New()
	g, name, err := loadGraph(cfg, mc)
	if err != nil {
		return err
	}
	manifest := cncount.NewManifest(map[string]string{
		"mode":     "serve",
		"graph":    name,
		"listen":   cfg.listen,
		"inflight": fmt.Sprint(cfg.inflight),
		"cache":    fmt.Sprint(cfg.cacheSize),
		"deadline": cfg.deadline.String(),
		"wal":      cfg.walDir,
		"fsync":    cfg.fsync,
	})
	mc.SetManifest(manifest)
	logger.Info("graph resident",
		"graph", name, "vertices", g.NumVertices(), "edges", g.NumEdges(),
		"bytes", g.MemoryBytes())

	// Request-scoped observability: RED metrics and the recount progress
	// source are shared between the serving layer (which feeds them) and
	// the obs plane (which exposes them on /metrics and /progress).
	reqMetrics := obs.NewRequestMetrics()
	prog := sched.NewProgress()
	var accessLog *slog.Logger
	if cfg.accessLog {
		accessLog = logger
	}
	srv := serve.New(g, name, serve.Options{
		MaxInFlight:    cfg.inflight,
		CacheEntries:   cfg.cacheSize,
		RequestTimeout: cfg.deadline,
		CountThreads:   cfg.threads,
		Metrics:        mc,
		Logf:           logf,
		Requests:       reqMetrics,
		CaptureSlowest: cfg.capture,
		Progress:       prog,
		AccessLog:      accessLog,
	})
	// walLog is set once recovery finishes; until then the obs closure
	// reports "no WAL" and /metrics omits the cncd_wal_* families.
	var walLog atomic.Pointer[wal.Log]
	plane := obs.New(obs.Options{
		Snapshot: mc.Snapshot,
		Progress: prog,
		Manifest: &manifest,
		Requests: reqMetrics,
		Logf:     logf,
		WALStats: func() (obs.WALStatus, bool) {
			l := walLog.Load()
			if l == nil {
				return obs.WALStatus{}, false
			}
			st := l.Stats()
			return obs.WALStatus{
				Segments:          st.Segments,
				Bytes:             st.Bytes,
				Appended:          st.Appended,
				LastSyncUnixNanos: st.LastSyncUnixNanos,
				NextSeq:           st.NextSeq,
			}, true
		},
	})
	defer func() {
		if l := walLog.Load(); l != nil {
			if cerr := l.Close(); cerr != nil {
				logger.Error("wal close failed", "err", cerr)
			}
		}
	}()
	if cfg.watchdog > 0 {
		wd := obs.StartWatchdog(obs.WatchdogOptions{
			Progress:   prog,
			StallAfter: cfg.watchdog,
			Snapshot:   mc.Snapshot,
			InFlight:   srv.InFlightRequests,
			OnStall: func(r obs.StallReport) {
				logger.Error("recount stalled", "report", r.String())
				if cfg.bundleDir != "" {
					if err := r.WriteBundle(cfg.bundleDir); err != nil {
						logger.Error("stall bundle write failed", "dir", cfg.bundleDir, "err", err)
					} else {
						logger.Info("stall bundle written", "dir", cfg.bundleDir)
					}
				}
			},
			Logf: logf,
		})
		defer wd.Stop()
	}
	// One mux, one listener: /v1/* from the serving layer, everything
	// else (healthz, metrics, progress, pprof) from the obs plane.
	mux := srv.Mux()
	mux.Handle("/", plane.Handler())

	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return fmt.Errorf("listen %s: %w", cfg.listen, err)
	}
	httpSrv := &http.Server{Handler: mux}

	// The optional ops-only listener serves just the plane; both the
	// drain path and the deferred cleanup close it, which Plane.Close is
	// contractually safe against (idempotent, any order, any state).
	defer plane.Close()
	if cfg.opsListen != "" {
		opsAddr, err := plane.Start(cfg.opsListen)
		if err != nil {
			ln.Close()
			return fmt.Errorf("ops listen %s: %w", cfg.opsListen, err)
		}
		logger.Info("ops plane listening", "addr", opsAddr.String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	logger.Info("listening", "addr", ln.Addr().String())
	// The parseable ready line the load generator and e2e tests wait for.
	fmt.Fprintf(stdout, "cncd listening on %s\n", ln.Addr())

	// The write path comes up after the listener so /healthz can report
	// recovery progress while the WAL replays; queries serve the loaded
	// epoch throughout, and /v1/update answers 503 until the ingester is
	// installed.
	if cfg.walDir != "" || cfg.updates {
		var done, total atomic.Int64
		if cfg.walDir != "" {
			plane.BeginRecovery(func() string {
				return fmt.Sprintf("wal replay %d/%d bytes", done.Load(), total.Load())
			})
		}
		log, err := setupIngest(cfg, g, name, srv, mc, logger, stdout,
			func(d, t int64) { done.Store(d); total.Store(t) })
		if err != nil {
			ln.Close()
			plane.Close()
			return err
		}
		if log != nil {
			walLog.Store(log)
		}
		plane.EndRecovery()
		logger.Info("updates enabled", "durable", log != nil, "epoch", srv.Epoch())
	}

	select {
	case err := <-serveErr:
		plane.Close()
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}

	// Drain: advertise unreadiness first so orchestrators stop routing,
	// then give in-flight requests the grace window, then stop the ops
	// listener. Exit 0 only when everything finished inside the grace.
	logger.Info("draining", "grace", cfg.drainGrace.String(), "in_flight", srv.InFlight())
	plane.BeginDrain()
	if cfg.drainNotice > 0 {
		// Keep accepting during the notice window: /healthz already says
		// 503, so routers pull the backend while late requests still land.
		time.Sleep(cfg.drainNotice)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.drainGrace)
	defer cancel()
	err = httpSrv.Shutdown(shutdownCtx)
	if err != nil {
		httpSrv.Close()
	}
	<-serveErr // Serve has returned once Shutdown/Close took effect
	if cerr := plane.Close(); err == nil {
		err = cerr
	}
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("drain: %w", err)
	}
	hits, misses := srv.CacheStats()
	logger.Info("drained, exiting", "cache_hits", hits, "cache_misses", misses)
	return nil
}

// setupIngest builds the write path: a boot count seeds the dynamic
// graph's maintained per-edge counts, the WAL (when configured) is
// replayed into it — torn tails truncated and tolerated, real
// corruption returned as a typed error that fails startup — and the
// ingestion layer is installed behind /v1/update. Returns the opened
// log, nil when running memory-only.
func setupIngest(cfg appConfig, g *cncount.Graph, name string, srv *serve.Server,
	mc *metrics.Collector, logger *slog.Logger, stdout io.Writer,
	progress func(done, total int64)) (*wal.Log, error) {
	policy, err := wal.ParseSyncPolicy(cfg.fsync)
	if err != nil {
		return nil, err
	}
	stop := mc.StartPhase("boot_count")
	res, err := cncount.Count(g, cncount.Options{Threads: cfg.threads, Metrics: mc})
	stop()
	if err != nil {
		return nil, fmt.Errorf("boot count for the update path: %w", err)
	}
	dyn, err := dynamic.FromCSR(g, res.Counts)
	if err != nil {
		return nil, err
	}

	nextSeq := uint64(1)
	var log *wal.Log
	if cfg.walDir != "" {
		info, err := wal.Replay(cfg.walDir, func(b wal.Batch) error {
			ops := make([]dynamic.Op, len(b.Ops))
			for i, op := range b.Ops {
				ops[i] = dynamic.Op{Kind: dynamic.OpKind(op.Kind), U: cncount.VertexID(op.U), V: cncount.VertexID(op.V)}
			}
			_, err := dyn.ApplyBatch(ops, cfg.threads)
			return err
		}, progress)
		if err != nil {
			return nil, fmt.Errorf("wal replay: %w", err)
		}
		if info.TornTail {
			logger.Warn("wal torn tail truncated",
				"segment", info.TruncatedSegment, "dropped_bytes", info.TruncatedBytes)
		}
		if info.Batches > 0 {
			csr, _, err := dyn.ToCSR()
			if err != nil {
				return nil, fmt.Errorf("rebuilding the replayed graph: %w", err)
			}
			srv.SwapGraph(csr, name)
		}
		// The parseable recovery banner the e2e crash tests wait for.
		fmt.Fprintf(stdout, "cncd wal replayed: batches=%d ops=%d torn_tail=%v epoch=%d\n",
			info.Batches, info.Ops, info.TornTail, srv.Epoch())
		nextSeq = info.LastSeq + 1
		log, err = wal.Open(cfg.walDir, wal.Options{
			SegmentBytes: cfg.walSeg,
			Sync:         policy,
			SyncEvery:    cfg.fsyncEvery,
			NextSeq:      nextSeq,
		})
		if err != nil {
			return nil, fmt.Errorf("wal open: %w", err)
		}
	}
	srv.EnableUpdates(serve.NewIngester(srv, dyn, nextSeq, serve.IngestOptions{
		WAL:     log,
		Workers: cfg.threads,
		Name:    name,
		Metrics: mc,
	}))
	return log, nil
}

// loadGraph resolves -graph/-profile into a resident CSR, recording
// load phases into mc.
func loadGraph(cfg appConfig, mc *metrics.Collector) (*cncount.Graph, string, error) {
	switch {
	case cfg.graphPath != "" && cfg.profile != "":
		return nil, "", errors.New("pass -graph or -profile, not both")
	case cfg.graphPath != "":
		g, err := cncount.LoadGraphMetrics(cfg.graphPath, mc)
		return g, cfg.graphPath, err
	case cfg.profile != "":
		stop := mc.StartPhase("generate")
		g, err := cncount.GenerateProfile(cfg.profile, cfg.scale)
		stop()
		return g, cfg.profile, err
	default:
		return nil, "", errors.New("pass -graph or -profile")
	}
}
