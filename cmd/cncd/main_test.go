package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"cncount/internal/logx"
)

type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenLine = regexp.MustCompile(`cncd listening on (\S+)`)

// waitAddr polls buf for the daemon's ready line and returns the bound
// address.
func waitAddr(t *testing.T, buf *syncBuffer, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if m := listenLine.FindStringSubmatch(buf.String()); m != nil {
			return m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address:\n%s", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func get(t *testing.T, url string) (int, http.Header, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(body)
}

// TestRunInProcessLifecycle drives the whole daemon through run() with
// a cancellable context standing in for SIGTERM: ready line, concurrent
// queries from several goroutines (race-instrumented under -race),
// cache hit after miss, obs plane on the same listener, then a clean
// nil-returning drain.
func TestRunInProcessLifecycle(t *testing.T) {
	logger, err := logx.New(io.Discard, "text", "cncd")
	if err != nil {
		t.Fatal(err)
	}
	cfg := appConfig{
		profile: "WI", scale: 0.05,
		listen:     "127.0.0.1:0",
		inflight:   16,
		cacheSize:  128,
		deadline:   5 * time.Second,
		drainGrace: 5 * time.Second,
		threads:    1,
		logger:     logger,
	}
	ctx, cancel := context.WithCancel(context.Background())
	var out syncBuffer
	runErr := make(chan error, 1)
	go func() { runErr <- run(ctx, cfg, &out) }()
	base := "http://" + waitAddr(t, &out, 10*time.Second)

	// The obs plane shares the listener with /v1/*.
	if status, _, body := get(t, base+"/healthz"); status != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz = %d %q", status, body)
	}

	// Draw a query pool, then hammer it from several goroutines.
	var sample struct {
		Edges [][2]uint32 `json:"edges"`
	}
	status, _, body := get(t, base+"/v1/sample?n=32")
	if status != http.StatusOK {
		t.Fatalf("/v1/sample = %d: %s", status, body)
	}
	if err := json.Unmarshal([]byte(body), &sample); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				e := sample.Edges[(w*25+i)%len(sample.Edges)]
				resp, err := http.Get(fmt.Sprintf("%s/v1/edge?u=%d&v=%d", base, e[0], e[1]))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("edge (%d,%d) = %d", e[0], e[1], resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Cache: a fresh canonical query misses, its repeat hits.
	e := sample.Edges[0]
	q := fmt.Sprintf("%s/v1/edge?u=%d&v=%d", base, e[0], e[1])
	if _, hdr, _ := get(t, q); hdr.Get("X-Cache") == "" {
		t.Error("edge response lacks X-Cache header")
	}
	if _, hdr, _ := get(t, q); hdr.Get("X-Cache") != "HIT" {
		t.Errorf("repeat query X-Cache = %q, want HIT", hdr.Get("X-Cache"))
	}
	// The hit/miss counters surface on the shared /metrics.
	if _, _, body := get(t, base+"/metrics"); !strings.Contains(body, `cncount_counter_total{name="serve.cache_hits"}`) {
		t.Errorf("/metrics lacks serve.cache_hits:\n%.600s", body)
	}

	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("drained run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return after cancel")
	}
}

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cncd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestDaemonSIGTERMDrainE2E pins the operational shutdown contract on
// the real binary: SIGTERM flips /healthz to 503 "draining" while the
// notice window keeps the listener accepting, and the process then
// exits 0.
func TestDaemonSIGTERMDrainE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals the real binary")
	}
	bin := buildDaemon(t)
	cmd := exec.Command(bin,
		"-profile", "WI", "-scale", "0.05", "-listen", "127.0.0.1:0",
		"-drainnotice", "3s", "-draingrace", "5s", "-threads", "1")
	var out syncBuffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	base := "http://" + waitAddr(t, &out, 20*time.Second)

	if status, _, body := get(t, base+"/healthz"); status != http.StatusOK || body != "ok\n" {
		t.Fatalf("pre-drain /healthz = %d %q", status, body)
	}
	var info struct {
		Epoch uint64 `json:"epoch"`
	}
	_, _, body := get(t, base+"/v1/info")
	if err := json.Unmarshal([]byte(body), &info); err != nil || info.Epoch != 1 {
		t.Fatalf("/v1/info = %s (err %v)", body, err)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Inside the notice window the daemon still accepts, advertising 503.
	deadline := time.Now().Add(2 * time.Second)
	var status int
	var drainBody string
	for {
		status, _, drainBody = get(t, base+"/healthz")
		if status == http.StatusServiceUnavailable || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if status != http.StatusServiceUnavailable || drainBody != "draining\n" {
		t.Errorf("draining /healthz = %d %q, want 503 \"draining\"", status, drainBody)
	}
	// Queries still answer during the notice window.
	if status, _, _ := get(t, base+"/v1/info"); status != http.StatusOK {
		t.Errorf("/v1/info during drain notice = %d, want 200", status)
	}

	if err := cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM drain exited non-zero: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "drained, exiting") {
		t.Errorf("no drain completion log:\n%s", out.String())
	}
}

// TestDaemonAdmission429E2E saturates a one-slot daemon with a slow
// recount and checks the next request is turned away with 429 +
// Retry-After while the slot is held, then served once it frees up.
func TestDaemonAdmission429E2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the real binary and runs a multi-second recount")
	}
	bin := buildDaemon(t)
	cmd := exec.Command(bin,
		"-profile", "TW", "-scale", "1", "-listen", "127.0.0.1:0",
		"-inflight", "1", "-threads", "1")
	var out syncBuffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Signal(os.Interrupt)
		cmd.Wait()
	}()
	base := "http://" + waitAddr(t, &out, 60*time.Second)

	// Hold the only slot with a slow sequential recount.
	countDone := make(chan error, 1)
	go func() {
		resp, err := http.Get(base + "/v1/count?algo=m&workers=1&timeout_ms=120000")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("recount = %d", resp.StatusCode)
			}
		}
		countDone <- err
	}()

	// While it runs, everything else must bounce with 429.
	deadline := time.Now().Add(30 * time.Second)
	saw429 := false
	for !saw429 && time.Now().Before(deadline) {
		status, hdr, _ := get(t, base+"/v1/info")
		if status == http.StatusTooManyRequests {
			saw429 = true
			if hdr.Get("Retry-After") != "1" {
				t.Errorf("429 Retry-After = %q, want \"1\"", hdr.Get("Retry-After"))
			}
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if !saw429 {
		t.Fatalf("never saw 429 while the recount held the slot:\n%s", out.String())
	}

	if err := <-countDone; err != nil {
		t.Fatalf("slot-holding recount failed: %v", err)
	}
	// Slot free again: service restored.
	deadline = time.Now().Add(5 * time.Second)
	for {
		status, _, _ := get(t, base+"/v1/info")
		if status == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("service not restored after the recount finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
