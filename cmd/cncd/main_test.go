package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"cncount/internal/logx"
	"cncount/internal/reqctx"
	"cncount/internal/serve"
	"cncount/internal/trace"
)

type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenLine = regexp.MustCompile(`cncd listening on (\S+)`)

// waitAddr polls buf for the daemon's ready line and returns the bound
// address.
func waitAddr(t *testing.T, buf *syncBuffer, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if m := listenLine.FindStringSubmatch(buf.String()); m != nil {
			return m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address:\n%s", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func get(t *testing.T, url string) (int, http.Header, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(body)
}

// TestRunInProcessLifecycle drives the whole daemon through run() with
// a cancellable context standing in for SIGTERM: ready line, concurrent
// queries from several goroutines (race-instrumented under -race),
// cache hit after miss, obs plane on the same listener, then a clean
// nil-returning drain.
func TestRunInProcessLifecycle(t *testing.T) {
	logger, err := logx.New(io.Discard, "text", "cncd")
	if err != nil {
		t.Fatal(err)
	}
	cfg := appConfig{
		profile: "WI", scale: 0.05,
		listen:     "127.0.0.1:0",
		inflight:   16,
		cacheSize:  128,
		deadline:   5 * time.Second,
		drainGrace: 5 * time.Second,
		threads:    1,
		logger:     logger,
	}
	ctx, cancel := context.WithCancel(context.Background())
	var out syncBuffer
	runErr := make(chan error, 1)
	go func() { runErr <- run(ctx, cfg, &out) }()
	base := "http://" + waitAddr(t, &out, 10*time.Second)

	// The obs plane shares the listener with /v1/*.
	if status, _, body := get(t, base+"/healthz"); status != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz = %d %q", status, body)
	}

	// Draw a query pool, then hammer it from several goroutines.
	var sample struct {
		Edges [][2]uint32 `json:"edges"`
	}
	status, _, body := get(t, base+"/v1/sample?n=32")
	if status != http.StatusOK {
		t.Fatalf("/v1/sample = %d: %s", status, body)
	}
	if err := json.Unmarshal([]byte(body), &sample); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				e := sample.Edges[(w*25+i)%len(sample.Edges)]
				resp, err := http.Get(fmt.Sprintf("%s/v1/edge?u=%d&v=%d", base, e[0], e[1]))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("edge (%d,%d) = %d", e[0], e[1], resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Cache: a fresh canonical query misses, its repeat hits.
	e := sample.Edges[0]
	q := fmt.Sprintf("%s/v1/edge?u=%d&v=%d", base, e[0], e[1])
	if _, hdr, _ := get(t, q); hdr.Get("X-Cache") == "" {
		t.Error("edge response lacks X-Cache header")
	}
	if _, hdr, _ := get(t, q); hdr.Get("X-Cache") != "HIT" {
		t.Errorf("repeat query X-Cache = %q, want HIT", hdr.Get("X-Cache"))
	}
	// The hit/miss counters surface on the shared /metrics.
	if _, _, body := get(t, base+"/metrics"); !strings.Contains(body, `cncount_counter_total{name="serve.cache_hits"}`) {
		t.Errorf("/metrics lacks serve.cache_hits:\n%.600s", body)
	}

	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("drained run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return after cancel")
	}
}

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cncd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestDaemonSIGTERMDrainE2E pins the operational shutdown contract on
// the real binary: SIGTERM flips /healthz to 503 "draining" while the
// notice window keeps the listener accepting, and the process then
// exits 0.
func TestDaemonSIGTERMDrainE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals the real binary")
	}
	bin := buildDaemon(t)
	cmd := exec.Command(bin,
		"-profile", "WI", "-scale", "0.05", "-listen", "127.0.0.1:0",
		"-drainnotice", "3s", "-draingrace", "5s", "-threads", "1")
	var out syncBuffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	base := "http://" + waitAddr(t, &out, 20*time.Second)

	if status, _, body := get(t, base+"/healthz"); status != http.StatusOK || body != "ok\n" {
		t.Fatalf("pre-drain /healthz = %d %q", status, body)
	}
	var info struct {
		Epoch uint64 `json:"epoch"`
	}
	_, _, body := get(t, base+"/v1/info")
	if err := json.Unmarshal([]byte(body), &info); err != nil || info.Epoch != 1 {
		t.Fatalf("/v1/info = %s (err %v)", body, err)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Inside the notice window the daemon still accepts, advertising 503.
	deadline := time.Now().Add(2 * time.Second)
	var status int
	var drainBody string
	for {
		status, _, drainBody = get(t, base+"/healthz")
		if status == http.StatusServiceUnavailable || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if status != http.StatusServiceUnavailable || drainBody != "draining\n" {
		t.Errorf("draining /healthz = %d %q, want 503 \"draining\"", status, drainBody)
	}
	// Queries still answer during the notice window.
	if status, _, _ := get(t, base+"/v1/info"); status != http.StatusOK {
		t.Errorf("/v1/info during drain notice = %d, want 200", status)
	}

	if err := cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM drain exited non-zero: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "drained, exiting") {
		t.Errorf("no drain completion log:\n%s", out.String())
	}
}

// TestDaemonAdmission429E2E saturates a one-slot daemon with a slow
// recount and checks the next request is turned away with 429 +
// Retry-After while the slot is held, then served once it frees up.
func TestDaemonAdmission429E2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the real binary and runs a multi-second recount")
	}
	bin := buildDaemon(t)
	cmd := exec.Command(bin,
		"-profile", "TW", "-scale", "1", "-listen", "127.0.0.1:0",
		"-inflight", "1", "-threads", "1")
	var out syncBuffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Signal(os.Interrupt)
		cmd.Wait()
	}()
	base := "http://" + waitAddr(t, &out, 60*time.Second)

	// Hold the only slot with a slow sequential recount.
	countDone := make(chan error, 1)
	go func() {
		resp, err := http.Get(base + "/v1/count?algo=m&workers=1&timeout_ms=120000")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("recount = %d", resp.StatusCode)
			}
		}
		countDone <- err
	}()

	// While it runs, everything else must bounce with 429.
	deadline := time.Now().Add(30 * time.Second)
	saw429 := false
	for !saw429 && time.Now().Before(deadline) {
		status, hdr, _ := get(t, base+"/v1/info")
		if status == http.StatusTooManyRequests {
			saw429 = true
			if hdr.Get("Retry-After") != "1" {
				t.Errorf("429 Retry-After = %q, want \"1\"", hdr.Get("Retry-After"))
			}
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if !saw429 {
		t.Fatalf("never saw 429 while the recount held the slot:\n%s", out.String())
	}

	if err := <-countDone; err != nil {
		t.Fatalf("slot-holding recount failed: %v", err)
	}
	// Slot free again: service restored.
	deadline = time.Now().Add(5 * time.Second)
	for {
		status, _, _ := get(t, base+"/v1/info")
		if status == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("service not restored after the recount finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// getWith fetches url with extra request headers.
func getWith(t *testing.T, url string, hdr map[string]string) (int, http.Header, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(body)
}

// TestDaemonRequestObservabilityE2E pins the request-scoped
// observability contract on the real binary, race-instrumented: a
// traced /v1/count echoes the caller's trace context, lands in
// /debug/requests.json with a span tree reaching sched-level worker
// spans, shows up in the correct RED histogram bucket on /metrics, and
// leaves a structured access-log event carrying its request ID.
func TestDaemonRequestObservabilityE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives the real binary under -race")
	}
	bin := filepath.Join(t.TempDir(), "cncd")
	if out, err := exec.Command("go", "build", "-race", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build -race: %v\n%s", err, out)
	}
	cmd := exec.Command(bin,
		"-profile", "WI", "-scale", "0.05", "-listen", "127.0.0.1:0",
		"-threads", "1", "-capture", "8", "-accesslog", "-logfmt", "json")
	var out syncBuffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Signal(os.Interrupt)
		cmd.Wait()
	}()
	base := "http://" + waitAddr(t, &out, 60*time.Second)

	// A traced recount: the response must continue the caller's trace
	// with a fresh child span and name itself with a server request ID.
	const caller = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	status, hdr, body := getWith(t, base+"/v1/count?algo=bmp&workers=1",
		map[string]string{"traceparent": caller})
	if status != http.StatusOK {
		t.Fatalf("/v1/count = %d: %s", status, body)
	}
	wantTrace := "4bf92f3577b34da6a3ce929d0e0e4736"
	if got := hdr.Get("X-Trace-Id"); got != wantTrace {
		t.Errorf("X-Trace-Id = %q, want the caller's trace id", got)
	}
	tc, ok := reqctx.ParseTraceparent(hdr.Get("Traceparent"))
	if !ok || tc.TraceID != wantTrace || tc.SpanID == "00f067aa0ba902b7" {
		t.Errorf("response traceparent %q does not continue the trace with a fresh span", hdr.Get("Traceparent"))
	}
	countReqID := hdr.Get("X-Request-Id")
	if !strings.HasPrefix(countReqID, "req-") {
		t.Fatalf("X-Request-Id = %q", countReqID)
	}

	// The capture ring retains it with a span tree that reaches the
	// scheduler: serve.count on the request's main row, core.count.BMP
	// from the worker rows.
	status, _, raw := get(t, base+"/debug/requests.json")
	if status != http.StatusOK {
		t.Fatalf("/debug/requests.json = %d", status)
	}
	if _, err := serve.ValidateRequests([]byte(raw)); err != nil {
		t.Fatalf("ValidateRequests: %v\n%s", err, raw)
	}
	var payload struct {
		Slowest []*serve.CapturedRequest `json:"slowest"`
	}
	if err := json.Unmarshal([]byte(raw), &payload); err != nil {
		t.Fatal(err)
	}
	var entry *serve.CapturedRequest
	for _, cr := range payload.Slowest {
		if cr.ID == countReqID {
			entry = cr
		}
	}
	if entry == nil {
		t.Fatalf("recount %s not in the capture ring:\n%s", countReqID, raw)
	}
	if entry.TraceID != wantTrace || entry.Endpoint != "count" {
		t.Errorf("captured entry = trace %q endpoint %q", entry.TraceID, entry.Endpoint)
	}
	names := map[string]bool{}
	var walk func(nodes []*trace.SpanNode)
	walk = func(nodes []*trace.SpanNode) {
		for _, n := range nodes {
			names[n.Name] = true
			walk(n.Children)
		}
	}
	walk(entry.Spans)
	if !names["serve.count"] {
		t.Errorf("span tree lacks serve.count: %v", names)
	}
	if !names["core.count.BMP"] {
		t.Errorf("span tree does not reach sched-level spans (core.count.BMP): %v", names)
	}

	// The RED histogram put the request in the right duration bucket:
	// every finite bucket below its duration is empty, every bucket at
	// or above it holds the one recount.
	secs := float64(entry.DurationNanos) / 1e9
	_, _, metricsBody := get(t, base+"/metrics")
	bucketLine := regexp.MustCompile(`cncd_request_duration_seconds_bucket\{endpoint="count",status="200",cache="[a-z]+",le="([^"]+)"\} (\d+)`)
	matched := 0
	for _, line := range strings.Split(metricsBody, "\n") {
		m := bucketLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		matched++
		le := math.Inf(1)
		if m[1] != "+Inf" {
			var err error
			if le, err = strconv.ParseFloat(m[1], 64); err != nil {
				t.Fatalf("bucket bound %q: %v", m[1], err)
			}
		}
		want := "1"
		if le < secs {
			want = "0"
		}
		if m[2] != want {
			t.Errorf("bucket le=%q = %s, want %s (request took %.6fs)", m[1], m[2], want, secs)
		}
	}
	if matched == 0 {
		t.Errorf("/metrics has no count-endpoint duration buckets:\n%.800s", metricsBody)
	}
	if !strings.Contains(metricsBody, "cncd_requests_in_flight") {
		t.Error("/metrics lacks cncd_requests_in_flight")
	}

	// The access log carries the request ID as a structured field.
	if !strings.Contains(out.String(), countReqID) {
		t.Errorf("access log never mentions %s:\n%.800s", countReqID, out.String())
	}

	// The inspector page is fully self-contained.
	status, _, page := get(t, base+"/debug/requests")
	if status != http.StatusOK {
		t.Fatalf("/debug/requests = %d", status)
	}
	if strings.Contains(page, `src="http`) || strings.Contains(page, `href="http`) {
		t.Error("inspector page references external assets")
	}
}

// postJSON posts a JSON body and returns the status and response body.
func postJSON(t *testing.T, url string, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

// updateResponse mirrors the /v1/update 202 body.
type updateResponse struct {
	Epoch   uint64 `json:"epoch"`
	Seq     uint64 `json:"seq"`
	Applied int    `json:"applied"`
}

var replayBanner = regexp.MustCompile(`cncd wal replayed: batches=(\d+) ops=(\d+) torn_tail=(\w+) epoch=(\d+)`)

// TestDaemonCrashRecoveryE2E pins the durability contract on the real
// binary: a daemon accepting durable updates is killed dead (SIGKILL —
// no drain, no WAL close) with a batch in flight; a restart on the same
// WAL directory must report a replay banner covering every acknowledged
// batch, resume epochs and sequence numbers monotonically, and serve a
// graph whose maintained counts match a from-scratch recount exactly.
func TestDaemonCrashRecoveryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills the real binary under -race")
	}
	bin := filepath.Join(t.TempDir(), "cncd")
	if out, err := exec.Command("go", "build", "-race", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build -race: %v\n%s", err, out)
	}
	walDir := t.TempDir()
	args := []string{
		"-profile", "WI", "-scale", "0.05", "-listen", "127.0.0.1:0",
		"-threads", "2", "-wal", walDir, "-fsync", "batch",
	}

	cmd := exec.Command(bin, args...)
	var out syncBuffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	base := "http://" + waitAddr(t, &out, 60*time.Second)

	// The ready line races the ingester install (recovery runs after the
	// listener is up, so queries serve during replay): wait for the
	// ingest section before relying on /v1/update.
	var info struct {
		Vertices int    `json:"vertices"`
		Epoch    uint64 `json:"epoch"`
		Ingest   *struct {
			Durable bool `json:"durable"`
		} `json:"ingest"`
	}
	bootDeadline := time.Now().Add(30 * time.Second)
	for {
		_, _, body := get(t, base+"/v1/info")
		if err := json.Unmarshal([]byte(body), &info); err != nil {
			t.Fatalf("/v1/info = %s (err %v)", body, err)
		}
		if info.Ingest != nil && info.Ingest.Durable {
			break
		}
		if time.Now().After(bootDeadline) {
			t.Fatalf("ingester never came up: %s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if info.Vertices < 8 {
		t.Fatalf("WI graph has %d vertices", info.Vertices)
	}

	// Acknowledged durable batches: each 202 means the batch is fsynced.
	// Epochs and seqs must climb strictly — one epoch per committed batch.
	const acks = 6
	lastEpoch, lastSeq := info.Epoch, uint64(0)
	for i := 0; i < acks; i++ {
		u, v := 2*i, 2*i+1
		reqBody := fmt.Sprintf(`{"ops":[{"op":"insert","u":%d,"v":%d},{"op":"insert","u":%d,"v":%d}]}`,
			u, v, u, (v+1)%info.Vertices)
		status, raw := postJSON(t, base+"/v1/update", reqBody)
		if status != http.StatusAccepted {
			t.Fatalf("update %d = %d: %s", i, status, raw)
		}
		var ur updateResponse
		if err := json.Unmarshal([]byte(raw), &ur); err != nil {
			t.Fatal(err)
		}
		if ur.Epoch <= lastEpoch || ur.Seq <= lastSeq {
			t.Fatalf("update %d: epoch %d seq %d did not climb past %d/%d", i, ur.Epoch, ur.Seq, lastEpoch, lastSeq)
		}
		lastEpoch, lastSeq = ur.Epoch, ur.Seq
	}

	// The crash: one more batch goes out and SIGKILL lands while it is
	// (possibly) in flight — no drain, no WAL close, a torn tail at the
	// disk's mercy. The in-flight batch may or may not have committed;
	// recovery must land on one of those two states, never in between.
	inflight := make(chan struct{})
	go func() {
		defer close(inflight)
		http.Post(base+"/v1/update", "application/json",
			strings.NewReader(`{"ops":[{"op":"insert","u":1,"v":3}]}`))
	}()
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	<-inflight

	// Restart on the same WAL directory.
	cmd2 := exec.Command(bin, args...)
	var out2 syncBuffer
	cmd2.Stdout, cmd2.Stderr = &out2, &out2
	if err := cmd2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd2.Process.Signal(os.Interrupt)
		cmd2.Wait()
	}()
	base2 := "http://" + waitAddr(t, &out2, 60*time.Second)

	// The replay banner must cover every acknowledged batch; at most one
	// more (the killed in-flight batch, if its fsync won the race).
	deadline := time.Now().Add(30 * time.Second)
	var m []string
	for {
		if m = replayBanner.FindStringSubmatch(out2.String()); m != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no replay banner after restart:\n%s", out2.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	replayed, _ := strconv.Atoi(m[1])
	if replayed < acks || replayed > acks+1 {
		t.Fatalf("replayed %d batches, acknowledged %d (banner %q)", replayed, acks, m[0])
	}

	// Wait for recovery to finish (healthz leaves "recovering"), then
	// check the resumed ingest state: last_seq continues the WAL, the
	// replay swap moved the epoch past boot.
	for {
		status, _, body := get(t, base2+"/healthz")
		if status == http.StatusOK && body == "ok\n" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never left recovery: %d %q", status, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	var info2 struct {
		Epoch  uint64 `json:"epoch"`
		Ingest struct {
			LastSeq   uint64 `json:"last_seq"`
			Triangles uint64 `json:"triangles"`
			Durable   bool   `json:"durable"`
		} `json:"ingest"`
	}
	_, _, body := get(t, base2+"/v1/info")
	if err := json.Unmarshal([]byte(body), &info2); err != nil {
		t.Fatalf("/v1/info after recovery: %v (%s)", err, body)
	}
	if info2.Ingest.LastSeq != uint64(replayed) || !info2.Ingest.Durable {
		t.Errorf("recovered ingest = %+v, want last_seq %d durable", info2.Ingest, replayed)
	}
	if info2.Epoch < 2 {
		t.Errorf("recovered epoch = %d, want >= 2 (boot + replay swap)", info2.Epoch)
	}

	// Count equality: the maintained counts replayed from the WAL must
	// match a from-scratch recount of the served graph, triangle for
	// triangle — the no-silent-divergence acceptance bar.
	var count struct {
		Triangles uint64 `json:"triangles"`
	}
	status, _, body := get(t, base2+"/v1/count?workers=2")
	if status != http.StatusOK {
		t.Fatalf("/v1/count after recovery = %d: %s", status, body)
	}
	if err := json.Unmarshal([]byte(body), &count); err != nil {
		t.Fatal(err)
	}
	if count.Triangles != info2.Ingest.Triangles {
		t.Fatalf("recount found %d triangles, replayed maintained counts say %d — silent divergence",
			count.Triangles, info2.Ingest.Triangles)
	}

	// Updates resume where the WAL left off: the next 202's seq is the
	// replayed stream plus one, its epoch past the recovery swap.
	status, raw := postJSON(t, base2+"/v1/update", `{"ops":[{"op":"insert","u":0,"v":5}]}`)
	if status != http.StatusAccepted {
		t.Fatalf("post-recovery update = %d: %s", status, raw)
	}
	var ur updateResponse
	if err := json.Unmarshal([]byte(raw), &ur); err != nil {
		t.Fatal(err)
	}
	if ur.Seq != uint64(replayed)+1 {
		t.Errorf("post-recovery seq = %d, want %d", ur.Seq, replayed+1)
	}
	if ur.Epoch <= info2.Epoch {
		t.Errorf("post-recovery epoch = %d, did not climb past %d", ur.Epoch, info2.Epoch)
	}
}
