// Command benchreport turns one or more BENCH_*.json reports
// (internal/benchfmt) into a trend and attribution report: every matrix
// cell's ns/edge trajectory across runs ordered by creation time, with
// past-threshold slowdowns between consecutive runs highlighted, plus a
// per-kernel × degree-bucket cost breakdown for the newest report that
// carries attribution matrices. Where `benchrun -baseline` is a pass/fail
// gate between exactly two reports, benchreport is the read side of the
// whole committed history.
//
// Usage:
//
//	benchreport BENCH_a.json BENCH_b.json ...    # trend across runs, oldest first
//	benchreport -threshold 0.05 BENCH_*.json     # highlight slowdowns past +5%
//	benchreport -html report.html BENCH_*.json   # also write a standalone HTML page
//
// benchreport never fails on a regression — it is a report, not a gate
// (use `benchrun -baseline` for gating) — but it does exit non-zero on
// unreadable or schema-incompatible inputs.
package main

import (
	"flag"
	"fmt"
	"html"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"cncount/internal/benchfmt"
)

// appConfig mirrors the flag set so the whole run is testable without
// touching globals or os.Exit.
type appConfig struct {
	threshold float64
	htmlOut   string
	files     []string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchreport: ")

	var cfg appConfig
	flag.Float64Var(&cfg.threshold, "threshold", 0.10, "relative ns/edge slowdown between consecutive runs that gets highlighted")
	flag.StringVar(&cfg.htmlOut, "html", "", "also write a standalone HTML report to this path")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benchreport [flags] BENCH_a.json [BENCH_b.json ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	cfg.files = flag.Args()

	if err := run(cfg, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// trendPoint is one report's measurement of one matrix cell.
type trendPoint struct {
	Label     string
	NsPerEdge float64
	// CacheHitRatio is the serving result-cache hit fraction for
	// load-generator cells; 0 for compute cells, which never carry it.
	CacheHitRatio float64
	Failed        bool
	// Present distinguishes "cell absent from this report" from a zero.
	Present bool
}

// cellTrend is one matrix cell's trajectory across all loaded reports,
// in report (time) order.
type cellTrend struct {
	Key    benchfmt.Key
	Points []trendPoint
	// LatestDelta is latest/previous ns-per-edge ratio minus 1, computed
	// over the last two reports where the cell completed; NaN-free: zero
	// when fewer than two such points exist.
	LatestDelta float64
	// Regressed marks LatestDelta past the threshold.
	Regressed bool
}

// attrRow is one (kernel, bucket) line of the attribution breakdown,
// with the estimated total time extrapolated from the sampled mean.
type attrRow struct {
	Kernel    string
	MinDegLen int
	Calls     uint64
	Samples   uint64
	// EstNanos is mean sampled cost × calls; 0 when the bucket was never
	// timed (its share of the estimate is unknown, not free).
	EstNanos float64
	// Share is EstNanos over the cell's total estimate.
	Share float64
}

// cellAttr is the attribution breakdown of one matrix cell in the newest
// report that carries matrices.
type cellAttr struct {
	Key      benchfmt.Key
	Scope    string
	Rows     []attrRow
	EstTotal float64
}

// analysis is everything the renderers need, computed once.
type analysis struct {
	Reports   []*benchfmt.Report
	Threshold float64
	Trends    []cellTrend
	// AttrLabel names the report AttrCells came from; empty when no
	// loaded report carries attribution.
	AttrLabel string
	AttrCells []cellAttr
}

// run executes one invocation: load, analyze, render text, and
// optionally render HTML.
func run(cfg appConfig, stdout io.Writer) error {
	if len(cfg.files) == 0 {
		return fmt.Errorf("no report files given (usage: benchreport [flags] BENCH_*.json)")
	}
	reports := make([]*benchfmt.Report, 0, len(cfg.files))
	for _, path := range cfg.files {
		r, err := benchfmt.LoadFile(path)
		if err != nil {
			return err
		}
		reports = append(reports, r)
	}
	// Time order, oldest first; ties (same second) break by label so the
	// report is deterministic regardless of argument order.
	sort.SliceStable(reports, func(i, j int) bool {
		if reports[i].CreatedUnix != reports[j].CreatedUnix {
			return reports[i].CreatedUnix < reports[j].CreatedUnix
		}
		return reports[i].Label < reports[j].Label
	})

	a := analyze(reports, cfg.threshold)
	writeText(stdout, a)
	if cfg.htmlOut != "" {
		f, err := os.Create(cfg.htmlOut)
		if err != nil {
			return err
		}
		if err := writeHTML(f, a); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", cfg.htmlOut)
	}
	return nil
}

// analyze folds the loaded reports into per-cell trends and the newest
// attribution breakdown.
func analyze(reports []*benchfmt.Report, threshold float64) analysis {
	a := analysis{Reports: reports, Threshold: threshold}

	byKey := map[benchfmt.Key]*cellTrend{}
	var order []benchfmt.Key
	for ri, r := range reports {
		for _, res := range r.Results {
			key := res.Key()
			t := byKey[key]
			if t == nil {
				t = &cellTrend{Key: key, Points: make([]trendPoint, len(reports))}
				byKey[key] = t
				order = append(order, key)
			}
			t.Points[ri] = trendPoint{
				Label:         r.Label,
				NsPerEdge:     res.NsPerEdge,
				CacheHitRatio: res.CacheHitRatio,
				Failed:        res.Failed,
				Present:       true,
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].String() < order[j].String() })
	for _, key := range order {
		t := byKey[key]
		// Latest delta: the last two completed measurements.
		var completed []float64
		for _, p := range t.Points {
			if p.Present && !p.Failed && p.NsPerEdge > 0 {
				completed = append(completed, p.NsPerEdge)
			}
		}
		if n := len(completed); n >= 2 {
			t.LatestDelta = completed[n-1]/completed[n-2] - 1
			t.Regressed = t.LatestDelta > threshold
		}
		a.Trends = append(a.Trends, *t)
	}

	// Attribution: the newest report where any cell carries matrices.
	for ri := len(reports) - 1; ri >= 0; ri-- {
		cells := attrCells(reports[ri])
		if len(cells) > 0 {
			a.AttrLabel = reports[ri].Label
			a.AttrCells = cells
			break
		}
	}
	return a
}

// attrCells extracts and flattens one report's attribution matrices.
func attrCells(r *benchfmt.Report) []cellAttr {
	var out []cellAttr
	for _, res := range r.Results {
		if len(res.Attribution) == 0 {
			continue
		}
		c := cellAttr{Key: res.Key()}
		for _, row := range res.Attribution {
			c.Scope = row.Scope
			for _, bk := range row.Buckets {
				ar := attrRow{
					Kernel:    row.Kernel,
					MinDegLen: bk.MinDegLen,
					Calls:     bk.Count,
					Samples:   bk.Samples,
				}
				if bk.Samples > 0 {
					ar.EstNanos = float64(bk.SampledNanos) / float64(bk.Samples) * float64(bk.Count)
				}
				c.EstTotal += ar.EstNanos
				c.Rows = append(c.Rows, ar)
			}
		}
		if c.EstTotal > 0 {
			for i := range c.Rows {
				c.Rows[i].Share = c.Rows[i].EstNanos / c.EstTotal
			}
		}
		// Costliest rows first; ties by (kernel, bucket) for determinism.
		sort.Slice(c.Rows, func(i, j int) bool {
			if c.Rows[i].EstNanos != c.Rows[j].EstNanos {
				return c.Rows[i].EstNanos > c.Rows[j].EstNanos
			}
			if c.Rows[i].Kernel != c.Rows[j].Kernel {
				return c.Rows[i].Kernel < c.Rows[j].Kernel
			}
			return c.Rows[i].MinDegLen < c.Rows[j].MinDegLen
		})
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.String() < out[j].Key.String() })
	return out
}

// kernelTotals folds a cell's rows down to per-kernel estimated shares,
// costliest first.
func kernelTotals(c cellAttr) []attrRow {
	agg := map[string]*attrRow{}
	var order []string
	for _, r := range c.Rows {
		t := agg[r.Kernel]
		if t == nil {
			t = &attrRow{Kernel: r.Kernel}
			agg[r.Kernel] = t
			order = append(order, r.Kernel)
		}
		t.Calls += r.Calls
		t.Samples += r.Samples
		t.EstNanos += r.EstNanos
		t.Share += r.Share
	}
	out := make([]attrRow, 0, len(order))
	for _, k := range order {
		out = append(out, *agg[k])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].EstNanos != out[j].EstNanos {
			return out[i].EstNanos > out[j].EstNanos
		}
		return out[i].Kernel < out[j].Kernel
	})
	return out
}

func writeText(w io.Writer, a analysis) {
	fmt.Fprintf(w, "benchmark trend across %d report(s), oldest first:\n", len(a.Reports))
	for _, r := range a.Reports {
		when := time.Unix(r.CreatedUnix, 0).UTC().Format("2006-01-02 15:04")
		fmt.Fprintf(w, "  %-20s %s  %s  %d cells\n", r.Label, when, r.GoVersion, len(r.Results))
	}
	fmt.Fprintln(w)

	regressions := 0
	for _, t := range a.Trends {
		var traj []string
		for _, p := range t.Points {
			switch {
			case !p.Present:
				traj = append(traj, "·")
			case p.Failed:
				traj = append(traj, "FAILED")
			default:
				traj = append(traj, fmt.Sprintf("%.2f", p.NsPerEdge))
			}
		}
		status := ""
		if len(a.Reports) > 1 {
			status = fmt.Sprintf("  latest %+.1f%%", 100*t.LatestDelta)
		}
		if t.Regressed {
			status += "  REGRESSED"
			regressions++
		}
		// Serving cells carry a cache hit ratio; show the newest one so a
		// latency shift is readable next to the hit rate that drove it.
		for i := len(t.Points) - 1; i >= 0; i-- {
			if p := t.Points[i]; p.Present && p.CacheHitRatio > 0 {
				status += fmt.Sprintf("  cache-hit %.0f%%", 100*p.CacheHitRatio)
				break
			}
		}
		fmt.Fprintf(w, "  %-18s %s ns/edge%s\n", t.Key, strings.Join(traj, " -> "), status)
	}
	if len(a.Reports) > 1 {
		fmt.Fprintf(w, "\n%d of %d cells slowed past +%.0f%% between their last two runs\n",
			regressions, len(a.Trends), 100*a.Threshold)
	}

	if a.AttrLabel == "" {
		fmt.Fprintf(w, "\nno report carries kernel attribution (re-run benchrun on this revision to record it)\n")
		return
	}
	fmt.Fprintf(w, "\nkernel attribution (report %q):\n", a.AttrLabel)
	for _, c := range a.AttrCells {
		fmt.Fprintf(w, "  %s  scope %s\n", c.Key, c.Scope)
		for _, k := range kernelTotals(c) {
			fmt.Fprintf(w, "    %-8s %5.1f%% of est time  %10d calls  %6d samples\n",
				k.Kernel, 100*k.Share, k.Calls, k.Samples)
		}
		// The few costliest (kernel, bucket) cells locate where the time
		// goes on the degree axis — the paper's skew story in one table.
		top := c.Rows
		if len(top) > 5 {
			top = top[:5]
		}
		for _, r := range top {
			if r.EstNanos == 0 {
				continue
			}
			fmt.Fprintf(w, "      %s @ min_deg_len=%d: %.1f%% (%d calls)\n",
				r.Kernel, r.MinDegLen, 100*r.Share, r.Calls)
		}
	}
}

// writeHTML renders the same analysis as a standalone page: no external
// assets, so the file can be attached to a PR or archived next to the
// BENCH_*.json it summarizes.
func writeHTML(w io.Writer, a analysis) error {
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8"><title>cncount benchmark report</title>
<style>
  body { font: 14px/1.5 ui-monospace, SFMono-Regular, Menlo, Consolas, monospace;
         margin: 2rem; color: #1c2733; }
  h1 { font-size: 1.2rem; } h2 { font-size: 1rem; margin-top: 1.5rem; }
  table { border-collapse: collapse; margin: .5rem 0; }
  th, td { border: 1px solid #ccd5dd; padding: .25rem .6rem; text-align: right; }
  th { background: #eef2f5; } td.name, th.name { text-align: left; }
  td.regressed { background: #fde2e0; font-weight: 600; }
  td.failed { background: #fdf0d0; }
  .bar { display: inline-block; height: .7em; background: #4fb3d9; vertical-align: middle; }
  .dim { color: #7b8794; }
</style></head><body>
<h1>cncount benchmark report</h1>
`)
	fmt.Fprintf(&b, "<p class=\"dim\">%d report(s), oldest first; slowdown highlight threshold +%.0f%%</p>\n",
		len(a.Reports), 100*a.Threshold)

	b.WriteString("<h2>Runs</h2>\n<table><tr><th class=\"name\">label</th><th>created (UTC)</th><th class=\"name\">go</th><th>cells</th></tr>\n")
	for _, r := range a.Reports {
		when := time.Unix(r.CreatedUnix, 0).UTC().Format("2006-01-02 15:04")
		fmt.Fprintf(&b, "<tr><td class=\"name\">%s</td><td>%s</td><td class=\"name\">%s</td><td>%d</td></tr>\n",
			html.EscapeString(r.Label), when, html.EscapeString(r.GoVersion), len(r.Results))
	}
	b.WriteString("</table>\n")

	b.WriteString("<h2>ns/edge trend</h2>\n<table><tr><th class=\"name\">cell</th>")
	for _, r := range a.Reports {
		fmt.Fprintf(&b, "<th>%s</th>", html.EscapeString(r.Label))
	}
	b.WriteString("<th>latest Δ</th></tr>\n")
	for _, t := range a.Trends {
		fmt.Fprintf(&b, "<tr><td class=\"name\">%s</td>", html.EscapeString(t.Key.String()))
		for _, p := range t.Points {
			switch {
			case !p.Present:
				b.WriteString("<td class=\"dim\">·</td>")
			case p.Failed:
				b.WriteString("<td class=\"failed\">failed</td>")
			default:
				fmt.Fprintf(&b, "<td>%.2f</td>", p.NsPerEdge)
			}
		}
		cls := ""
		if t.Regressed {
			cls = ` class="regressed"`
		}
		if len(a.Reports) > 1 {
			fmt.Fprintf(&b, "<td%s>%+.1f%%</td>", cls, 100*t.LatestDelta)
		} else {
			b.WriteString("<td class=\"dim\">—</td>")
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</table>\n")

	if a.AttrLabel != "" {
		fmt.Fprintf(&b, "<h2>Kernel attribution (report %s)</h2>\n", html.EscapeString(a.AttrLabel))
		for _, c := range a.AttrCells {
			fmt.Fprintf(&b, "<h2 class=\"dim\">%s — %s</h2>\n<table><tr><th class=\"name\">kernel</th><th>est share</th><th></th><th>calls</th><th>samples</th></tr>\n",
				html.EscapeString(c.Key.String()), html.EscapeString(c.Scope))
			for _, k := range kernelTotals(c) {
				fmt.Fprintf(&b, "<tr><td class=\"name\">%s</td><td>%.1f%%</td><td class=\"name\"><span class=\"bar\" style=\"width:%.0fpx\"></span></td><td>%d</td><td>%d</td></tr>\n",
					html.EscapeString(k.Kernel), 100*k.Share, 200*k.Share, k.Calls, k.Samples)
			}
			b.WriteString("</table>\n")
		}
	} else {
		b.WriteString("<p class=\"dim\">no report carries kernel attribution</p>\n")
	}
	b.WriteString("</body></html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
