package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cncount/internal/benchfmt"
	"cncount/internal/metrics"
)

// writeReport marshals a report into dir and returns its path.
func writeReport(t *testing.T, dir, name string, r *benchfmt.Report) string {
	t.Helper()
	r.Schema = benchfmt.Schema
	path := filepath.Join(dir, name)
	if err := benchfmt.WriteFile(path, r); err != nil {
		t.Fatal(err)
	}
	return path
}

// history builds a two-report trajectory: WI/BMP/w4 slows past the
// threshold, WI/MPS/w4 holds steady, one cell exists only in the old
// report, and the newest report carries an attribution matrix.
func history(t *testing.T, dir string) (old, new string) {
	t.Helper()
	old = writeReport(t, dir, "BENCH_old.json", &benchfmt.Report{
		Label: "old", CreatedUnix: 1000, GoVersion: "go1.22",
		Results: []benchfmt.Result{
			{Graph: "WI", Algo: "BMP", Workers: 4, NsPerEdge: 10.0},
			{Graph: "WI", Algo: "MPS", Workers: 4, NsPerEdge: 100.0},
			{Graph: "OR", Algo: "BMP", Workers: 2, NsPerEdge: 5.0},
		},
	})
	new = writeReport(t, dir, "BENCH_new.json", &benchfmt.Report{
		Label: "new", CreatedUnix: 2000, GoVersion: "go1.22",
		Results: []benchfmt.Result{
			{Graph: "WI", Algo: "BMP", Workers: 4, NsPerEdge: 13.0,
				Attribution: []metrics.KernelAttr{
					{Scope: "core.count", Kernel: "merge", Buckets: []metrics.AttrBucket{
						{MinDegLen: 3, Count: 100, SampledNanos: 1000, Samples: 10},
					}},
					{Scope: "core.count", Kernel: "bitmap", Buckets: []metrics.AttrBucket{
						{MinDegLen: 8, Count: 10, SampledNanos: 9000, Samples: 10},
					}},
				}},
			{Graph: "WI", Algo: "MPS", Workers: 4, NsPerEdge: 101.0},
		},
	})
	return old, new
}

// TestRunTrendAndAttribution drives the full CLI path over a two-report
// history and pins the text report: time ordering regardless of argument
// order, regression highlighting, the missing-cell marker, and the
// attribution breakdown with the costliest kernel first.
func TestRunTrendAndAttribution(t *testing.T) {
	dir := t.TempDir()
	old, new := history(t, dir)

	var out strings.Builder
	// Newest first on the command line: the report must still order by
	// CreatedUnix.
	if err := run(appConfig{threshold: 0.10, files: []string{new, old}}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()

	if !strings.Contains(text, "WI/BMP/w4") || !strings.Contains(text, "10.00 -> 13.00") {
		t.Errorf("trend line missing or misordered:\n%s", text)
	}
	if !strings.Contains(text, "REGRESSED") {
		t.Errorf("+30%% slowdown not highlighted:\n%s", text)
	}
	if strings.Count(text, "REGRESSED") != 1 {
		t.Errorf("steady cell highlighted too:\n%s", text)
	}
	// OR/BMP/w2 exists only in the old report: a placeholder, not a silent drop.
	if !strings.Contains(text, "OR/BMP/w2") || !strings.Contains(text, "5.00 -> ·") {
		t.Errorf("cell missing from newest report not marked:\n%s", text)
	}
	if !strings.Contains(text, `kernel attribution (report "new")`) {
		t.Errorf("attribution section missing:\n%s", text)
	}
	// bitmap: est 900ns/sample * 10 calls = 9000; merge: 100ns * 100 = 10000.
	// merge is costlier, so it lists first.
	mi, bi := strings.Index(text, "merge"), strings.Index(text, "bitmap")
	if mi < 0 || bi < 0 || mi > bi {
		t.Errorf("kernels not ordered by estimated cost:\n%s", text)
	}
	if !strings.Contains(text, "min_deg_len=3") {
		t.Errorf("degree-bucket breakdown missing:\n%s", text)
	}
	if !strings.Contains(text, "1 of 3 cells slowed past +10%") {
		t.Errorf("summary line wrong:\n%s", text)
	}
}

// TestRunHTML checks -html writes a self-contained page carrying the
// same trend and attribution content.
func TestRunHTML(t *testing.T) {
	dir := t.TempDir()
	old, new := history(t, dir)
	htmlPath := filepath.Join(dir, "report.html")

	var out strings.Builder
	if err := run(appConfig{threshold: 0.10, htmlOut: htmlPath, files: []string{old, new}}, &out); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(htmlPath)
	if err != nil {
		t.Fatal(err)
	}
	page := string(b)
	for _, want := range []string{
		"<!DOCTYPE html>",
		"WI/BMP/w4",
		`class="regressed"`,
		"Kernel attribution",
		"merge",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("HTML report lacks %q", want)
		}
	}
	if strings.Contains(page, "http://") || strings.Contains(page, "https://") {
		t.Error("HTML report references external assets")
	}
}

// TestRunSingleReport checks the degenerate one-file invocation still
// renders (no deltas, no crash) — the shape `make check` uses on a fresh
// clone with one committed report.
func TestRunSingleReport(t *testing.T) {
	dir := t.TempDir()
	path := writeReport(t, dir, "BENCH_one.json", &benchfmt.Report{
		Label: "one", CreatedUnix: 1500,
		Results: []benchfmt.Result{{Graph: "WI", Algo: "BMP", Workers: 1, NsPerEdge: 7.5}},
	})
	var out strings.Builder
	if err := run(appConfig{threshold: 0.10, files: []string{path}}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "7.50") {
		t.Errorf("single-report render missing the measurement:\n%s", out.String())
	}
	if strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("single report cannot regress:\n%s", out.String())
	}
}

// TestRunErrors pins the failure modes: no inputs, an unreadable file,
// and a schema-incompatible file all fail the run.
func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(appConfig{}, &out); err == nil {
		t.Error("no files accepted")
	}
	if err := run(appConfig{files: []string{"/does/not/exist.json"}}, &out); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(appConfig{files: []string{bad}}, &out); err == nil {
		t.Error("wrong-schema file accepted")
	}
}

// TestRunFailedCells checks failed cells render as such in the trend
// rather than as zero-ns measurements.
func TestRunFailedCells(t *testing.T) {
	dir := t.TempDir()
	path := writeReport(t, dir, "BENCH_f.json", &benchfmt.Report{
		Label: "f", CreatedUnix: 100,
		Results: []benchfmt.Result{
			{Graph: "WI", Algo: "BMP", Workers: 2, Failed: true, Error: "boom"},
		},
	})
	var out strings.Builder
	if err := run(appConfig{files: []string{path}}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "FAILED") {
		t.Errorf("failed cell not marked:\n%s", out.String())
	}
}
