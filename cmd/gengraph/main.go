// Command gengraph generates synthetic graphs — the paper's dataset
// profiles or raw random-graph models — and writes them to disk.
//
// Usage:
//
//	gengraph -profile TW -scale 1.0 -out tw.bin
//	gengraph -model rmat -rmatscale 16 -edgefactor 16 -out rmat.txt
//	gengraph -model er -vertices 10000 -edges 150000 -out er.bin
//
// gengraph exits 0 only when generation, the graph write, and the printed
// summary all succeeded.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"cncount"
	"cncount/internal/gen"
	"cncount/internal/graph"
)

// appConfig mirrors the flag set so the whole run is testable without
// touching globals or os.Exit.
type appConfig struct {
	profile    string
	scale      float64
	model      string
	vertices   int
	edges      int
	rmatScale  int
	edgeFactor int
	seed       int64
	out        string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("gengraph: ")

	var cfg appConfig
	flag.StringVar(&cfg.profile, "profile", "", "dataset profile: "+strings.Join(cncount.ProfileNames(), ", "))
	flag.Float64Var(&cfg.scale, "scale", 1.0, "profile scale")
	flag.StringVar(&cfg.model, "model", "", "raw model instead of a profile: er, rmat")
	flag.IntVar(&cfg.vertices, "vertices", 10000, "er: vertex count")
	flag.IntVar(&cfg.edges, "edges", 100000, "er: undirected edge count")
	flag.IntVar(&cfg.rmatScale, "rmatscale", 14, "rmat: log2 vertex count")
	flag.IntVar(&cfg.edgeFactor, "edgefactor", 16, "rmat: edges per vertex")
	flag.Int64Var(&cfg.seed, "seed", 42, "random seed")
	flag.StringVar(&cfg.out, "out", "", "output path (.bin = binary CSR, else text edge list)")
	flag.Parse()

	if err := run(cfg, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes one generation. Every failure — bad flags, generation,
// the graph write, or the printed summary — is returned so main can exit
// non-zero.
func run(cfg appConfig, stdout io.Writer) error {
	if cfg.out == "" {
		return errors.New("missing -out path")
	}
	g, err := generate(cfg)
	if err != nil {
		return err
	}
	if err := cncount.SaveGraph(cfg.out, g); err != nil {
		return err
	}
	out := &errWriter{w: stdout}
	fmt.Fprintln(out, cncount.Summarize(cfg.out, g))
	fmt.Fprintf(out, "skewed intersections (>50x): %.2f%%\n", cncount.SkewPercent(g, 50))
	return out.err
}

// generate builds the requested graph from the profile or raw model.
func generate(cfg appConfig) (*graph.CSR, error) {
	switch {
	case cfg.profile != "" && cfg.model != "":
		return nil, errors.New("pass either -profile or -model, not both")
	case cfg.profile != "":
		return cncount.GenerateProfile(cfg.profile, cfg.scale)
	case cfg.model == "er":
		return gen.ErdosRenyi(cfg.vertices, cfg.edges, cfg.seed)
	case cfg.model == "rmat":
		return gen.RMAT(cfg.rmatScale, cfg.edgeFactor, 0.57, 0.19, 0.19, cfg.seed)
	case cfg.model != "":
		return nil, fmt.Errorf("unknown model %q (want er, rmat)", cfg.model)
	default:
		return nil, errors.New("pass -profile or -model (er, rmat)")
	}
}

// errWriter latches the first write error so every ignored fmt.Fprintf
// result still surfaces as a non-zero exit at the end of the run.
type errWriter struct {
	w   io.Writer
	err error
}

func (w *errWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	n, err := w.w.Write(p)
	if err != nil {
		w.err = err
	}
	return n, err
}
