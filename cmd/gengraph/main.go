// Command gengraph generates synthetic graphs — the paper's dataset
// profiles or raw random-graph models — and writes them to disk.
//
// Usage:
//
//	gengraph -profile TW -scale 1.0 -out tw.bin
//	gengraph -model rmat -rmatscale 16 -edgefactor 16 -out rmat.txt
//	gengraph -model er -vertices 10000 -edges 150000 -out er.bin
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"cncount"
	"cncount/internal/gen"
	"cncount/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gengraph: ")

	var (
		profile    = flag.String("profile", "", "dataset profile: "+strings.Join(cncount.ProfileNames(), ", "))
		scale      = flag.Float64("scale", 1.0, "profile scale")
		model      = flag.String("model", "", "raw model instead of a profile: er, rmat")
		vertices   = flag.Int("vertices", 10000, "er: vertex count")
		edges      = flag.Int("edges", 100000, "er: undirected edge count")
		rmatScale  = flag.Int("rmatscale", 14, "rmat: log2 vertex count")
		edgeFactor = flag.Int("edgefactor", 16, "rmat: edges per vertex")
		seed       = flag.Int64("seed", 42, "random seed")
		out        = flag.String("out", "", "output path (.bin = binary CSR, else text edge list)")
	)
	flag.Parse()
	if *out == "" {
		log.Fatal("missing -out path")
	}

	var g *graph.CSR
	var err error
	switch {
	case *profile != "" && *model != "":
		log.Fatal("pass either -profile or -model, not both")
	case *profile != "":
		g, err = cncount.GenerateProfile(*profile, *scale)
	case *model == "er":
		g, err = gen.ErdosRenyi(*vertices, *edges, *seed)
	case *model == "rmat":
		g, err = gen.RMAT(*rmatScale, *edgeFactor, 0.57, 0.19, 0.19, *seed)
	default:
		log.Fatal("pass -profile or -model (er, rmat)")
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := cncount.SaveGraph(*out, g); err != nil {
		log.Fatal(err)
	}
	s := cncount.Summarize(*out, g)
	fmt.Println(s)
	fmt.Printf("skewed intersections (>50x): %.2f%%\n", cncount.SkewPercent(g, 50))
}
