package main

import (
	"bytes"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"cncount"
)

func TestRunProfileWritesGraph(t *testing.T) {
	out := filepath.Join(t.TempDir(), "wi.bin")
	cfg := appConfig{profile: "WI", scale: 0.05, out: out}
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	g, err := cncount.LoadGraph(out)
	if err != nil {
		t.Fatalf("written graph unreadable: %v", err)
	}
	if g.NumEdges() == 0 {
		t.Error("written graph is empty")
	}
	if !strings.Contains(buf.String(), "skewed intersections") {
		t.Errorf("summary missing:\n%s", buf.String())
	}
}

func TestRunModels(t *testing.T) {
	dir := t.TempDir()
	for name, cfg := range map[string]appConfig{
		"er":   {model: "er", vertices: 500, edges: 2000, seed: 1, out: filepath.Join(dir, "er.bin")},
		"rmat": {model: "rmat", rmatScale: 8, edgeFactor: 4, seed: 1, out: filepath.Join(dir, "rmat.txt")},
	} {
		if err := run(cfg, io.Discard); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.bin")
	for name, cfg := range map[string]appConfig{
		"missing out":     {profile: "WI", scale: 0.05},
		"both sources":    {profile: "WI", model: "er", out: out},
		"neither source":  {out: out},
		"unknown model":   {model: "quantum", out: out},
		"unknown profile": {profile: "NOPE", out: out},
		"unwritable out":  {profile: "WI", scale: 0.05, out: filepath.Join(t.TempDir(), "missing-dir", "g.bin")},
	} {
		if err := run(cfg, io.Discard); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRunOutputErrorExitsNonZero(t *testing.T) {
	cfg := appConfig{profile: "WI", scale: 0.05, out: filepath.Join(t.TempDir(), "g.bin")}
	if err := run(cfg, failWriter{}); err == nil {
		t.Error("output write failure did not fail the run")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) {
	return 0, io.ErrClosedPipe
}
