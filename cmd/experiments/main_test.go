package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cncount/internal/trace"
)

func TestRunListWritesIDs(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), appConfig{list: true}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"table1", "fig10", "ablations"} {
		if !strings.Contains(buf.String(), id) {
			t.Errorf("list output missing %q:\n%s", id, buf.String())
		}
	}
}

// TestRunSingleExperimentWithTraceAndMetrics drives one counting
// experiment end to end with both observers: the per-experiment trace
// file must pass the Chrome trace-event schema check and contain the
// generation and counting spans, and the metrics array must parse.
func TestRunSingleExperimentWithTraceAndMetrics(t *testing.T) {
	dir := t.TempDir()
	cfg := appConfig{id: "fig3", scale: 0.05, metricsOut: "-", traceDir: filepath.Join(dir, "traces")}
	var buf bytes.Buffer
	if err := run(context.Background(), cfg, &buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}

	data, err := os.ReadFile(filepath.Join(cfg.traceDir, "trace_fig3.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(data); err != nil {
		t.Fatalf("experiment trace fails schema check: %v", err)
	}
	_, names, err := trace.SpanCount(data)
	if err != nil {
		t.Fatal(err)
	}
	var hasGen, hasCount bool
	for name := range names {
		if strings.HasPrefix(name, "gen.") {
			hasGen = true
		}
		if name == "core.count" {
			hasCount = true
		}
	}
	if !hasGen || !hasCount {
		t.Errorf("trace missing gen/count spans: %v", names)
	}

	// The metrics snapshot array is the line starting with '[' on stdout.
	var jsonLine string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "[") {
			jsonLine = line
			break
		}
	}
	if jsonLine == "" {
		t.Fatalf("no metrics array in output:\n%s", buf.String())
	}
	var snaps []experimentMetrics
	if err := json.Unmarshal([]byte(jsonLine), &snaps); err != nil {
		t.Fatalf("metrics array is not valid JSON: %v", err)
	}
	if len(snaps) != 1 || snaps[0].Experiment != "fig3" {
		t.Errorf("snapshots = %+v, want one for fig3", snaps)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(context.Background(), appConfig{id: "fig999"}, io.Discard); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunUnwritableOutExitsNonZero(t *testing.T) {
	cfg := appConfig{id: "table1", scale: 0.05, out: filepath.Join(t.TempDir(), "missing-dir", "out.md")}
	if err := run(context.Background(), cfg, io.Discard); err == nil {
		t.Error("unwritable -out path did not fail the run")
	}
}

func TestRunUnwritableTraceDirExitsNonZero(t *testing.T) {
	dir := t.TempDir()
	// A file where the trace directory should be makes MkdirAll fail.
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := appConfig{id: "table1", scale: 0.05, traceDir: filepath.Join(blocker, "traces")}
	if err := run(context.Background(), cfg, io.Discard); err == nil {
		t.Error("unwritable -trace-dir did not fail the run")
	}
}

// TestRunCanceledContextAborts pins the cooperative-cancel contract: a
// dead context stops the sweep before the first experiment and surfaces
// as a non-zero exit naming the abort point.
func TestRunCanceledContextAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := appConfig{id: "table1", scale: 0.05}
	err := run(ctx, cfg, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "aborted before table1") {
		t.Fatalf("run err = %v, want pre-experiment abort", err)
	}
}

// TestRunTimeoutFlagAborts exercises the -timeout wrapping: an
// already-expired deadline must abort the run with a deadline cause.
func TestRunTimeoutFlagAborts(t *testing.T) {
	cfg := appConfig{id: "table1", scale: 0.05, timeout: 1}
	err := run(context.Background(), cfg, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("run err = %v, want deadline abort", err)
	}
}

func TestRunOutputErrorExitsNonZero(t *testing.T) {
	cfg := appConfig{id: "table1", scale: 0.05}
	if err := run(context.Background(), cfg, failWriter{}); err == nil {
		t.Error("output write failure did not fail the run")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) {
	return 0, io.ErrClosedPipe
}
