// Command experiments regenerates the paper's tables and figures on the
// synthetic dataset profiles and simulated processors.
//
// Usage:
//
//	experiments -experiment all            # everything, in paper order
//	experiments -experiment fig10          # one table or figure
//	experiments -experiment all -out EXPERIMENTS.md
//	experiments -experiment all -metrics metrics.json
//
// With -metrics, each experiment additionally emits a JSON metrics
// snapshot (phase timings, per-worker scheduler tallies, imbalance
// summary) so the tables' results can be attributed to the paper's
// Algorithm 3 phases. Snapshots reflect work actually performed: cached
// graphs and counting runs shared with earlier experiments record
// nothing on reuse.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"cncount/internal/experiments"
	"cncount/internal/metrics"
)

// experimentMetrics pairs one experiment's id with its metrics snapshot.
type experimentMetrics struct {
	Experiment string           `json:"experiment"`
	Snapshot   metrics.Snapshot `json:"snapshot"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		id         = flag.String("experiment", "all", "experiment id (table1..table7, fig3..fig10) or 'all'")
		scale      = flag.Float64("scale", 1.0, "dataset profile scale")
		out        = flag.String("out", "", "write output to this file instead of stdout")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		metricsOut = flag.String("metrics", "", `write per-experiment metrics snapshots as a JSON array ("-" = stdout)`)
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}

	ctx := experiments.NewContext()
	ctx.Scale = *scale
	ctx.CapacityScale = 0.001 * *scale

	var snaps []experimentMetrics
	run := func(e experiments.Experiment) {
		if *metricsOut != "" {
			ctx.Metrics = metrics.New()
		}
		start := time.Now()
		text, err := e.Run(ctx)
		if err != nil {
			log.Fatalf("%s: %v", e.ID, err)
		}
		fmt.Fprintf(w, "## %s\n\n```\n%s```\n\n", e.Title, text)
		log.Printf("%s done in %v", e.ID, time.Since(start).Round(time.Millisecond))
		if *metricsOut != "" {
			snaps = append(snaps, experimentMetrics{Experiment: e.ID, Snapshot: ctx.Metrics.Snapshot()})
		}
	}

	if strings.EqualFold(*id, "all") {
		fmt.Fprintf(w, "# Experiment results (profile scale %g, capacity scale %g)\n\n",
			ctx.Scale, ctx.CapacityScale)
		for _, e := range experiments.All {
			run(e)
		}
	} else {
		e, err := experiments.ByID(*id)
		if err != nil {
			log.Fatal(err)
		}
		run(e)
	}

	if *metricsOut != "" {
		if err := writeSnapshots(*metricsOut, snaps); err != nil {
			log.Fatalf("writing metrics: %v", err)
		}
	}
}

// writeSnapshots writes the per-experiment snapshots as one JSON array,
// surfacing write and close errors.
func writeSnapshots(path string, snaps []experimentMetrics) error {
	b, err := json.Marshal(snaps)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(b)
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
