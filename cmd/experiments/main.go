// Command experiments regenerates the paper's tables and figures on the
// synthetic dataset profiles and simulated processors.
//
// Usage:
//
//	experiments -experiment all            # everything, in paper order
//	experiments -experiment fig10          # one table or figure
//	experiments -experiment all -out EXPERIMENTS.md
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"cncount/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		id    = flag.String("experiment", "all", "experiment id (table1..table7, fig3..fig10) or 'all'")
		scale = flag.Float64("scale", 1.0, "dataset profile scale")
		out   = flag.String("out", "", "write output to this file instead of stdout")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}

	ctx := experiments.NewContext()
	ctx.Scale = *scale
	ctx.CapacityScale = 0.001 * *scale

	run := func(e experiments.Experiment) {
		start := time.Now()
		text, err := e.Run(ctx)
		if err != nil {
			log.Fatalf("%s: %v", e.ID, err)
		}
		fmt.Fprintf(w, "## %s\n\n```\n%s```\n\n", e.Title, text)
		log.Printf("%s done in %v", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if strings.EqualFold(*id, "all") {
		fmt.Fprintf(w, "# Experiment results (profile scale %g, capacity scale %g)\n\n",
			ctx.Scale, ctx.CapacityScale)
		for _, e := range experiments.All {
			run(e)
		}
		return
	}
	e, err := experiments.ByID(*id)
	if err != nil {
		log.Fatal(err)
	}
	run(e)
}
