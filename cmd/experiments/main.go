// Command experiments regenerates the paper's tables and figures on the
// synthetic dataset profiles and simulated processors.
//
// Usage:
//
//	experiments -experiment all            # everything, in paper order
//	experiments -experiment fig10          # one table or figure
//	experiments -experiment all -out EXPERIMENTS.md
//	experiments -experiment all -metrics metrics.json
//	experiments -experiment fig5 -trace-dir traces/
//	experiments -experiment all -http 127.0.0.1:8080
//
// With -metrics, each experiment additionally emits a JSON metrics
// snapshot (phase timings, per-worker scheduler tallies, imbalance
// summary) so the tables' results can be attributed to the paper's
// Algorithm 3 phases. With -trace-dir, each experiment writes a
// Perfetto-loadable Chrome trace-event timeline trace_<id>.json into the
// directory. Both reflect work actually performed: cached graphs and
// counting runs shared with earlier experiments record nothing on reuse.
//
// experiments exits 0 only when every experiment and every output write
// succeeded.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"cncount/internal/experiments"
	"cncount/internal/logx"
	"cncount/internal/metrics"
	"cncount/internal/obs"
	"cncount/internal/sched"
	"cncount/internal/trace"
)

// experimentMetrics pairs one experiment's id with its metrics snapshot.
type experimentMetrics struct {
	Experiment string           `json:"experiment"`
	Snapshot   metrics.Snapshot `json:"snapshot"`
}

// appConfig mirrors the flag set so the whole run is testable without
// touching globals or os.Exit.
type appConfig struct {
	id         string
	scale      float64
	out        string
	list       bool
	metricsOut string
	traceDir   string
	httpAddr   string
	timeout    time.Duration
	logFormat  string
	// logger receives the structured progress events (experiment done,
	// plane lifecycle). run() defaults a nil logger to stderr in
	// cfg.logFormat, so test call sites need not set it.
	logger *slog.Logger
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var cfg appConfig
	flag.StringVar(&cfg.id, "experiment", "all", "experiment id (table1..table7, fig3..fig10) or 'all'")
	flag.Float64Var(&cfg.scale, "scale", 1.0, "dataset profile scale")
	flag.StringVar(&cfg.out, "out", "", "write output to this file instead of stdout")
	flag.BoolVar(&cfg.list, "list", false, "list experiment ids and exit")
	flag.StringVar(&cfg.metricsOut, "metrics", "", `write per-experiment metrics snapshots as a JSON array ("-" = stdout)`)
	flag.StringVar(&cfg.traceDir, "trace-dir", "", "write a Chrome trace-event timeline trace_<id>.json per experiment into this directory")
	flag.StringVar(&cfg.httpAddr, "http", "", "serve the observability plane (/metrics, /progress, ...) on this address while experiments run")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "abort the run after this long (0 = no limit)")
	flag.StringVar(&cfg.logFormat, "logfmt", "text", "log output format: "+logx.Formats)
	flag.Parse()

	// SIGINT/SIGTERM cancel the sweep cooperatively: the current counting
	// run stops at the next task boundary and the exit code is non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, cfg, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes one invocation. Every failure — a failed experiment, an
// unwritable -out/-metrics/-trace-dir path, or an output I/O error — is
// returned so main can exit non-zero.
func run(runCtx context.Context, cfg appConfig, stdout io.Writer) error {
	if cfg.logger == nil {
		var err error
		if cfg.logger, err = logx.New(os.Stderr, cfg.logFormat, "experiments"); err != nil {
			return err
		}
	}
	out := &errWriter{w: stdout}
	if cfg.list {
		for _, e := range experiments.All {
			fmt.Fprintf(out, "%-8s %s\n", e.ID, e.Title)
		}
		return out.err
	}

	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(runCtx, cfg.timeout)
		defer cancel()
	}

	var w io.Writer = out
	var outFile *os.File
	if cfg.out != "" {
		f, err := os.Create(cfg.out)
		if err != nil {
			return err
		}
		outFile = f
		w = f
	}
	err := runExperiments(runCtx, cfg, w, out)
	if outFile != nil {
		if cerr := outFile.Close(); err == nil && cerr != nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	return out.err
}

// runExperiments runs the selected experiments, writing report text to w
// and any -metrics "-" snapshot to stdout.
func runExperiments(runCtx context.Context, cfg appConfig, w io.Writer, stdout io.Writer) error {
	logger := cfg.logger
	if cfg.traceDir != "" {
		if err := os.MkdirAll(cfg.traceDir, 0o755); err != nil {
			return fmt.Errorf("trace dir: %w", err)
		}
	}

	// A run-scoped cancel guarantees runCtx.Done() fires by the time this
	// function returns, bounding the plane's drain watcher below.
	runCtx, cancelRun := context.WithCancel(runCtx)
	defer cancelRun()

	ctx := experiments.NewContext()
	ctx.Scale = cfg.scale
	ctx.CapacityScale = 0.001 * cfg.scale
	ctx.Ctx = runCtx

	manifest := metrics.NewManifest(map[string]string{
		"harness":    "experiments",
		"experiment": cfg.id,
		"scale":      strconv.FormatFloat(cfg.scale, 'g', -1, 64),
	})

	// With -http, the observability plane scrapes whichever collector the
	// currently running experiment records into; liveMC tracks it across
	// the per-experiment resets that -metrics performs.
	var liveMC atomic.Pointer[metrics.Collector]
	if cfg.httpAddr != "" {
		ctx.Progress = sched.NewProgress()
		if cfg.metricsOut == "" {
			// Nothing else asked for metrics; keep one collector for the
			// whole run so /metrics still has phase timings to show.
			ctx.Metrics = metrics.New()
			ctx.Metrics.SetManifest(manifest)
			liveMC.Store(ctx.Metrics)
		}
		// The flight recorder spans the whole sweep: /timeseries.json and
		// /dashboard show every experiment's counting region in sequence.
		rec := obs.NewRecorder(obs.RecorderOptions{Progress: ctx.Progress})
		rec.Start()
		defer rec.Stop()
		plane := obs.New(obs.Options{
			Snapshot: func() metrics.Snapshot {
				if mc := liveMC.Load(); mc != nil {
					return mc.Snapshot()
				}
				return metrics.Snapshot{}
			},
			Progress: ctx.Progress,
			Recorder: rec,
			Manifest: &manifest,
			Logf:     logx.Printf(logger),
		})
		addr, err := plane.Start(cfg.httpAddr)
		if err != nil {
			return fmt.Errorf("observability plane: %w", err)
		}
		logger.Info("observability plane listening on http://"+addr.String()+"/", "addr", addr.String())
		// Flip /healthz to "draining" the moment the run is canceled, so
		// pollers see the shutdown before the listener goes away. The
		// watcher always exits: cancelRun fires on return.
		go func() {
			<-runCtx.Done()
			plane.BeginDrain()
		}()
		defer func() {
			if err := plane.Close(); err != nil {
				logger.Error("observability plane shutdown failed", "err", err)
			}
		}()
	}

	var snaps []experimentMetrics
	runOne := func(e experiments.Experiment) error {
		// A canceled or timed-out invocation stops between experiments;
		// mid-experiment cancellation surfaces from the counting run
		// itself as a CanceledError.
		if err := runCtx.Err(); err != nil {
			return fmt.Errorf("aborted before %s: %w", e.ID, err)
		}
		if cfg.metricsOut != "" {
			ctx.Metrics = metrics.New()
			ctx.Metrics.SetManifest(manifest)
			liveMC.Store(ctx.Metrics)
		}
		if cfg.traceDir != "" {
			ctx.Trace = trace.New()
		}
		start := time.Now()
		text, err := e.Run(ctx)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if _, err := fmt.Fprintf(w, "## %s\n\n```\n%s```\n\n", e.Title, text); err != nil {
			return err
		}
		logger.Info("experiment done", "id", e.ID, "elapsed", time.Since(start).Round(time.Millisecond))
		if cfg.metricsOut != "" {
			snaps = append(snaps, experimentMetrics{Experiment: e.ID, Snapshot: ctx.Metrics.Snapshot()})
		}
		if cfg.traceDir != "" {
			path := filepath.Join(cfg.traceDir, "trace_"+e.ID+".json")
			if err := writeTrace(path, ctx.Trace); err != nil {
				return fmt.Errorf("writing trace for %s: %w", e.ID, err)
			}
		}
		return nil
	}

	if strings.EqualFold(cfg.id, "all") {
		if _, err := fmt.Fprintf(w, "# Experiment results (profile scale %g, capacity scale %g)\n\n",
			ctx.Scale, ctx.CapacityScale); err != nil {
			return err
		}
		for _, e := range experiments.All {
			if err := runOne(e); err != nil {
				return err
			}
		}
	} else {
		e, err := experiments.ByID(cfg.id)
		if err != nil {
			return err
		}
		if err := runOne(e); err != nil {
			return err
		}
	}

	if cfg.metricsOut != "" {
		if err := writeSnapshots(cfg.metricsOut, snaps, stdout); err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
	}
	return nil
}

// writeSnapshots writes the per-experiment snapshots as one JSON array,
// surfacing write and close errors.
func writeSnapshots(path string, snaps []experimentMetrics, stdout io.Writer) error {
	b, err := json.Marshal(snaps)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err := stdout.Write(b)
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTrace writes the experiment's timeline, surfacing write and close
// errors.
func writeTrace(path string, tr *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// errWriter latches the first write error so every ignored fmt.Fprintf
// result still surfaces as a non-zero exit at the end of the run.
type errWriter struct {
	w   io.Writer
	err error
}

func (w *errWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	n, err := w.w.Write(p)
	if err != nil {
		w.err = err
	}
	return n, err
}
