// Command scan performs structural graph clustering (SCAN) driven by
// all-edge common neighbor counting.
//
// Usage:
//
//	scan -graph graph.txt -eps 0.6 -mu 4
//	scan -profile LJ -eps 0.5 -mu 3 -strategy counts
//
// Strategies: "pruned" evaluates similarities on demand with pSCAN pruning
// (best for a single query); "counts" first runs the batch all-edge
// counting and derives the clustering from it (best when sweeping ε/μ).
//
// scan exits 0 only when the whole run — loading, clustering, and the
// printed report — succeeded.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"

	"cncount"
	"cncount/internal/scan"
)

// appConfig mirrors the flag set so the whole run is testable without
// touching globals or os.Exit.
type appConfig struct {
	graphPath string
	profile   string
	scale     float64
	eps       float64
	mu        int
	strategy  string
	top       int
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("scan: ")

	var cfg appConfig
	flag.StringVar(&cfg.graphPath, "graph", "", "graph file (text edge list or binary CSR)")
	flag.StringVar(&cfg.profile, "profile", "", "generate a dataset profile instead: "+strings.Join(cncount.ProfileNames(), ", "))
	flag.Float64Var(&cfg.scale, "scale", 1.0, "profile scale")
	flag.Float64Var(&cfg.eps, "eps", 0.6, "similarity threshold ε in (0,1]")
	flag.IntVar(&cfg.mu, "mu", 4, "core threshold μ ≥ 2")
	flag.StringVar(&cfg.strategy, "strategy", "pruned", "similarity strategy: pruned, counts")
	flag.IntVar(&cfg.top, "top", 10, "print the largest N clusters")
	flag.Parse()

	if cfg.graphPath == "" && cfg.profile == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(cfg, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes one clustering run. Every failure — bad flags, loading,
// clustering, or an output I/O error — is returned so main can exit
// non-zero.
func run(cfg appConfig, stdout io.Writer) error {
	g, err := load(cfg.graphPath, cfg.profile, cfg.scale)
	if err != nil {
		return err
	}
	out := &errWriter{w: stdout}
	fmt.Fprintln(out, cncount.Summarize("input", g))

	var res *scan.Result
	switch cfg.strategy {
	case "pruned":
		res, err = scan.Run(g, scan.Params{Eps: cfg.eps, Mu: cfg.mu})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "pruning: %d of %d edges needed an intersection (%.1f%%)\n",
			res.SimilarityChecks, res.EdgesTotal,
			100*float64(res.SimilarityChecks)/float64(max(res.EdgesTotal, 1)))
	case "counts":
		cres, err := cncount.Count(g, cncount.Options{Algorithm: cncount.AlgoBMP, Reorder: true})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "batch counting: %v\n", cres.Elapsed)
		res, err = scan.FromCounts(g, cres.Counts, scan.Params{Eps: cfg.eps, Mu: cfg.mu})
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown strategy %q (want pruned, counts)", cfg.strategy)
	}

	cores, hubs, outliers := 0, 0, 0
	for v := range res.Cores {
		switch {
		case res.Cores[v]:
			cores++
		case res.Hubs[v]:
			hubs++
		case res.Outliers[v]:
			outliers++
		}
	}
	fmt.Fprintf(out, "SCAN(ε=%.2f, μ=%d): %d clusters, %d cores, %d hubs, %d outliers\n",
		cfg.eps, cfg.mu, res.NumClusters, cores, hubs, outliers)

	sizes := make(map[int32]int)
	for _, c := range res.ClusterOf {
		if c >= 0 {
			sizes[c]++
		}
	}
	type cs struct {
		id   int32
		size int
	}
	var ranked []cs
	for id, s := range sizes {
		ranked = append(ranked, cs{id, s})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].size != ranked[j].size {
			return ranked[i].size > ranked[j].size
		}
		return ranked[i].id < ranked[j].id
	})
	for i, c := range ranked {
		if i >= cfg.top {
			break
		}
		fmt.Fprintf(out, "  cluster %-6d %d vertices\n", c.id, c.size)
	}
	return out.err
}

func load(path, profile string, scale float64) (*cncount.Graph, error) {
	switch {
	case path != "" && profile != "":
		return nil, fmt.Errorf("pass either -graph or -profile, not both")
	case path != "":
		return cncount.LoadGraph(path)
	case profile != "":
		return cncount.GenerateProfile(profile, scale)
	default:
		return nil, errors.New("pass -graph or -profile")
	}
}

func max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// errWriter latches the first write error so every ignored fmt.Fprintf
// result still surfaces as a non-zero exit at the end of the run.
type errWriter struct {
	w   io.Writer
	err error
}

func (w *errWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	n, err := w.w.Write(p)
	if err != nil {
		w.err = err
	}
	return n, err
}
