// Command scan performs structural graph clustering (SCAN) driven by
// all-edge common neighbor counting.
//
// Usage:
//
//	scan -graph graph.txt -eps 0.6 -mu 4
//	scan -profile LJ -eps 0.5 -mu 3 -strategy counts
//
// Strategies: "pruned" evaluates similarities on demand with pSCAN pruning
// (best for a single query); "counts" first runs the batch all-edge
// counting and derives the clustering from it (best when sweeping ε/μ).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"cncount"
	"cncount/internal/scan"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scan: ")

	var (
		graphPath = flag.String("graph", "", "graph file (text edge list or binary CSR)")
		profile   = flag.String("profile", "", "generate a dataset profile instead: "+strings.Join(cncount.ProfileNames(), ", "))
		scale     = flag.Float64("scale", 1.0, "profile scale")
		eps       = flag.Float64("eps", 0.6, "similarity threshold ε in (0,1]")
		mu        = flag.Int("mu", 4, "core threshold μ ≥ 2")
		strategy  = flag.String("strategy", "pruned", "similarity strategy: pruned, counts")
		top       = flag.Int("top", 10, "print the largest N clusters")
	)
	flag.Parse()

	g, err := load(*graphPath, *profile, *scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cncount.Summarize("input", g))

	var res *scan.Result
	switch *strategy {
	case "pruned":
		res, err = scan.Run(g, scan.Params{Eps: *eps, Mu: *mu})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pruning: %d of %d edges needed an intersection (%.1f%%)\n",
			res.SimilarityChecks, res.EdgesTotal,
			100*float64(res.SimilarityChecks)/float64(max(res.EdgesTotal, 1)))
	case "counts":
		cres, err := cncount.Count(g, cncount.Options{Algorithm: cncount.AlgoBMP, Reorder: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batch counting: %v\n", cres.Elapsed)
		res, err = scan.FromCounts(g, cres.Counts, scan.Params{Eps: *eps, Mu: *mu})
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown strategy %q (want pruned, counts)", *strategy)
	}

	cores, hubs, outliers := 0, 0, 0
	for v := range res.Cores {
		switch {
		case res.Cores[v]:
			cores++
		case res.Hubs[v]:
			hubs++
		case res.Outliers[v]:
			outliers++
		}
	}
	fmt.Printf("SCAN(ε=%.2f, μ=%d): %d clusters, %d cores, %d hubs, %d outliers\n",
		*eps, *mu, res.NumClusters, cores, hubs, outliers)

	sizes := make(map[int32]int)
	for _, c := range res.ClusterOf {
		if c >= 0 {
			sizes[c]++
		}
	}
	type cs struct {
		id   int32
		size int
	}
	var ranked []cs
	for id, s := range sizes {
		ranked = append(ranked, cs{id, s})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].size != ranked[j].size {
			return ranked[i].size > ranked[j].size
		}
		return ranked[i].id < ranked[j].id
	})
	for i, c := range ranked {
		if i >= *top {
			break
		}
		fmt.Printf("  cluster %-6d %d vertices\n", c.id, c.size)
	}
}

func load(path, profile string, scale float64) (*cncount.Graph, error) {
	switch {
	case path != "" && profile != "":
		return nil, fmt.Errorf("pass either -graph or -profile, not both")
	case path != "":
		return cncount.LoadGraph(path)
	case profile != "":
		return cncount.GenerateProfile(profile, scale)
	default:
		flag.Usage()
		os.Exit(2)
		return nil, nil
	}
}

func max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
