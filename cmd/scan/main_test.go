package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func smallRun() appConfig {
	return appConfig{profile: "WI", scale: 0.05, eps: 0.5, mu: 3, strategy: "pruned", top: 5}
}

func TestRunStrategies(t *testing.T) {
	for _, strategy := range []string{"pruned", "counts"} {
		cfg := smallRun()
		cfg.strategy = strategy
		var buf bytes.Buffer
		if err := run(cfg, &buf); err != nil {
			t.Fatalf("%s: %v\n%s", strategy, err, buf.String())
		}
		if !strings.Contains(buf.String(), "SCAN(") {
			t.Errorf("%s: clustering summary missing:\n%s", strategy, buf.String())
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for name, mutate := range map[string]func(*appConfig){
		"both sources":     func(c *appConfig) { c.graphPath = "x.txt" },
		"unknown strategy": func(c *appConfig) { c.strategy = "psychic" },
		"unknown profile":  func(c *appConfig) { c.profile = "NOPE" },
		"missing graph":    func(c *appConfig) { c.profile = ""; c.graphPath = "/nonexistent/g.txt" },
	} {
		cfg := smallRun()
		mutate(&cfg)
		if err := run(cfg, io.Discard); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRunOutputErrorExitsNonZero(t *testing.T) {
	if err := run(smallRun(), failWriter{}); err == nil {
		t.Error("output write failure did not fail the run")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) {
	return 0, io.ErrClosedPipe
}
