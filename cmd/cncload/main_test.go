package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"cncount"
	"cncount/internal/benchfmt"
	"cncount/internal/logx"
	"cncount/internal/reqctx"
	"cncount/internal/serve"
)

// startTarget serves a small graph in-process and returns its host:port.
func startTarget(t *testing.T) string {
	t.Helper()
	g, err := cncount.GenerateProfile("WI", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.New(g, "WI", serve.Options{CountThreads: 1}).Handler())
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

func baseConfig(t *testing.T, addr string) appConfig {
	t.Helper()
	logger, err := logx.New(io.Discard, "text", "cncload")
	if err != nil {
		t.Fatal(err)
	}
	return appConfig{
		addr:        addr,
		duration:    300 * time.Millisecond,
		concurrency: 4,
		mix:         "edge=8,pair=1,topk=1",
		sampleN:     64,
		topK:        5,
		timeout:     5 * time.Second,
		label:       "loadtest",
		maxFailPct:  0,
		logger:      logger,
	}
}

// TestLoadRunWritesServingReport drives the generator against an
// in-process server and checks the human summary and the benchfmt
// report: one row per mix endpoint with latency percentiles.
func TestLoadRunWritesServingReport(t *testing.T) {
	addr := startTarget(t)
	cfg := baseConfig(t, addr)
	cfg.out = filepath.Join(t.TempDir(), "BENCH_serve.json")

	var out strings.Builder
	if err := run(context.Background(), cfg, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "req/s") || !strings.Contains(out.String(), "p99") {
		t.Errorf("summary missing throughput/latency:\n%s", out.String())
	}

	rep, err := benchfmt.LoadFile(cfg.out)
	if err != nil {
		t.Fatalf("report unreadable: %v", err)
	}
	if rep.Schema != benchfmt.Schema || rep.Label != "loadtest" {
		t.Errorf("report header = %q/%q", rep.Schema, rep.Label)
	}
	if len(rep.Results) == 0 || len(rep.Results) > 3 {
		t.Fatalf("report rows = %d, want 1..3 (one per exercised endpoint)", len(rep.Results))
	}
	seen := map[string]bool{}
	hitRatio := map[string]float64{}
	for _, r := range rep.Results {
		seen[r.Graph] = true
		hitRatio[r.Graph] = r.CacheHitRatio
		if r.CacheHitRatio < 0 || r.CacheHitRatio > 1 {
			t.Errorf("row %s: cache_hit_ratio = %v, want [0,1]", r.Graph, r.CacheHitRatio)
		}
		if !strings.HasPrefix(r.Graph, "serve/") || r.Algo != "serve" {
			t.Errorf("row identity = %s/%s, want serve/<endpoint> with algo serve", r.Graph, r.Algo)
		}
		if r.Workers != 4 || r.Edges <= 0 || r.ElapsedNanos <= 0 || r.NsPerEdge <= 0 {
			t.Errorf("row %s: empty measurement %+v", r.Graph, r)
		}
		if r.TaskP50Nanos == 0 || r.TaskP99Nanos < r.TaskP95Nanos || r.TaskP95Nanos < r.TaskP50Nanos {
			t.Errorf("row %s: implausible percentiles p50=%d p95=%d p99=%d",
				r.Graph, r.TaskP50Nanos, r.TaskP95Nanos, r.TaskP99Nanos)
		}
	}
	// The dominant mix member must be present, and hammering a 64-edge
	// pool for the whole run must produce result-cache hits.
	if !seen["serve/edge"] {
		t.Errorf("no serve/edge row in %v", seen)
	}
	if hitRatio["serve/edge"] == 0 {
		t.Error("serve/edge cache_hit_ratio = 0; repeated pool queries should hit the result cache")
	}
	if !strings.Contains(out.String(), "cache-hit") {
		t.Errorf("summary lacks per-endpoint cache-hit ratios:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "(req-") {
		t.Errorf("summary does not name the slowest requests by server request ID:\n%s", out.String())
	}
	if rep.Manifest == nil || rep.Manifest.Config["mix"] != cfg.mix {
		t.Errorf("manifest does not record the mix: %+v", rep.Manifest)
	}
}

// TestLoadPropagatesTraceAndNamesFailures drives the generator against
// a stub daemon whose /v1/edge always fails: every request must carry a
// parseable W3C traceparent, and the summary must name the failures by
// the server-assigned request ID so they can be looked up in the
// daemon's /debug/requests error ring.
func TestLoadPropagatesTraceAndNamesFailures(t *testing.T) {
	var mu sync.Mutex
	traceparents := map[string]bool{}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/info", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"graph":"stub","epoch":1,"vertices":16,"edges":32}`)
	})
	mux.HandleFunc("/v1/sample", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"edges":[[0,1],[1,2]]}`)
	})
	mux.HandleFunc("/v1/edge", func(w http.ResponseWriter, r *http.Request) {
		tp := r.Header.Get("traceparent")
		if _, ok := reqctx.ParseTraceparent(tp); !ok {
			t.Errorf("request carried unparseable traceparent %q", tp)
		}
		mu.Lock()
		traceparents[tp] = true
		mu.Unlock()
		w.Header().Set("X-Request-Id", "req-deadbeef00112233")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, `{"error":"stub failure","request_id":"req-deadbeef00112233"}`)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	cfg := baseConfig(t, strings.TrimPrefix(ts.URL, "http://"))
	cfg.mix = "edge=1"
	cfg.maxFailPct = 100
	var out strings.Builder
	err := run(context.Background(), cfg, &out)
	// Every request failed, so the run errors on "no request completed" —
	// the failure identification must still have been printed.
	if err == nil {
		t.Error("run succeeded against an all-failing target")
	}
	if !strings.Contains(out.String(), "failed edge status=500 request_id=req-deadbeef00112233") {
		t.Errorf("failures not named by server request ID:\n%s", out.String())
	}
	mu.Lock()
	distinct := len(traceparents)
	mu.Unlock()
	if distinct < 2 {
		t.Errorf("saw %d distinct traceparents, want one per request", distinct)
	}
}

// TestLoadRunUnreachableTarget fails fast with a useful error instead
// of reporting an empty run.
func TestLoadRunUnreachableTarget(t *testing.T) {
	cfg := baseConfig(t, "127.0.0.1:1")
	cfg.timeout = 500 * time.Millisecond
	err := run(context.Background(), cfg, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "probe") {
		t.Fatalf("unreachable target: err = %v, want probe failure", err)
	}
}

func TestParseMix(t *testing.T) {
	mix, err := parseMix("edge=8, pair=1,topk=2")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 3 || mix[0] != (op{"edge", 8}) || mix[1] != (op{"pair", 1}) || mix[2] != (op{"topk", 2}) {
		t.Errorf("mix = %+v", mix)
	}
	for _, bad := range []string{"", "edge", "edge=0", "edge=x", "nope=1", "edge=1,edge=2"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

func TestPercentiles(t *testing.T) {
	var ls []time.Duration
	for i := 1; i <= 100; i++ {
		ls = append(ls, time.Duration(i)*time.Millisecond)
	}
	p50, p95, p99 := percentiles(ls)
	if p50 != 50*time.Millisecond || p95 != 95*time.Millisecond || p99 != 99*time.Millisecond {
		t.Errorf("percentiles = %v %v %v", p50, p95, p99)
	}
	if a, b, c := percentiles(nil); a != 0 || b != 0 || c != 0 {
		t.Errorf("empty percentiles = %v %v %v", a, b, c)
	}
	if a, _, c := percentiles([]time.Duration{time.Second}); a != time.Second || c != time.Second {
		t.Errorf("singleton percentiles = %v %v", a, c)
	}
}
