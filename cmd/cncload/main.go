// Command cncload is the load generator for the resident counting
// service (cmd/cncd): it drives a configurable mix of query endpoints
// at a fixed concurrency for a fixed duration and reports serving
// throughput and latency percentiles, optionally as a schema-versioned
// benchfmt report comparable across runs.
//
// Usage:
//
//	cncload -addr 127.0.0.1:8080 -duration 10s -concurrency 16
//	cncload -addr 127.0.0.1:8080 -mix edge=8,pair=1,topk=1 -out BENCH_serve.json
//
// The generator first asks the daemon for its shape (/v1/info) and a
// representative edge pool (/v1/sample), so the query stream touches
// real edges spread across the offset range. Each worker then loops a
// deterministic per-worker PRNG over the mix. Every request carries a
// deterministic W3C traceparent (seeded by the worker PRNG), so
// daemon-side capture entries are attributable to the run; the server's
// X-Cache and X-Request-Id headers are read back to report per-endpoint
// cache hit ratios and to name the slowest and failed requests by the
// daemon's own request IDs. A 429 is retried with jittered backoff
// honoring the server's Retry-After header, up to -retries attempts per
// request; only a request whose budget runs out counts as rejected (the
// admission gate doing its job), any other non-2xx as failed; rejection,
// retry and failure rates are all reported and failures exit non-zero
// past -maxfail. The mix may include "update": those workers POST small
// edge-mutation batches to /v1/update (each worker deletes only edges it
// previously inserted, so the resident graph's own edges are never
// touched) and the report gains an updates/sec dimension.
//
// In the report, one Result row carries the serving figures: Graph is
// the endpoint mix cell ("serve/<endpoint>"... one row per endpoint),
// Workers is the concurrency, Edges the request count, ElapsedNanos the
// wall time, NsPerEdge the mean wall nanoseconds per request (1e9/QPS),
// and TaskP50/95/99Nanos the request latency percentiles.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"cncount/internal/benchfmt"
	"cncount/internal/logx"
	"cncount/internal/metrics"
	"cncount/internal/reqctx"
)

// appConfig mirrors the flag set so the whole run is testable without
// touching globals or os.Exit.
type appConfig struct {
	addr        string
	duration    time.Duration
	concurrency int
	mix         string
	sampleN     int
	topK        int
	timeout     time.Duration
	out         string
	label       string
	maxFailPct  float64
	retries     int
	logFormat   string
	logger      *slog.Logger
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cncload: ")

	var cfg appConfig
	flag.StringVar(&cfg.addr, "addr", "", "daemon address, e.g. 127.0.0.1:8080 (required)")
	flag.DurationVar(&cfg.duration, "duration", 5*time.Second, "how long to generate load")
	flag.IntVar(&cfg.concurrency, "concurrency", 8, "concurrent client workers")
	flag.StringVar(&cfg.mix, "mix", "edge=8,pair=1,topk=1", "endpoint weights as name=weight, from edge, pair, topk, count, update")
	flag.IntVar(&cfg.sampleN, "sample", 1024, "edge pool size drawn from /v1/sample")
	flag.IntVar(&cfg.topK, "topk", 10, "k for topk queries")
	flag.DurationVar(&cfg.timeout, "timeout", 10*time.Second, "per-request client timeout")
	flag.StringVar(&cfg.out, "out", "", "write a benchfmt report (BENCH_*.json) here")
	flag.StringVar(&cfg.label, "label", "serve", "report label")
	flag.Float64Var(&cfg.maxFailPct, "maxfail", 1.0, "exit non-zero when more than this percent of requests fail (429 rejections excluded)")
	flag.IntVar(&cfg.retries, "retries", 3, "retry budget per request on 429, with jittered backoff honoring Retry-After")
	flag.StringVar(&cfg.logFormat, "logfmt", "text", "log output format: "+logx.Formats)
	flag.Parse()

	if cfg.addr == "" {
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// op is one endpoint in the query mix.
type op struct {
	name   string
	weight int
}

// workerStats accumulates one worker's measurements; workers never
// share, so the hot loop is lock-free and slices merge after the join.
type workerStats struct {
	latencies map[string][]time.Duration // endpoint → per-request latency
	sent      map[string]int64
	cacheSeen map[string]int64 // endpoint → responses carrying X-Cache
	cacheHits map[string]int64 // endpoint → X-Cache: HIT
	retries   map[string]int64 // endpoint → 429 retry attempts taken
	slowest   map[string]slowRequest
	failures  []failedRequest // first few non-429 failures, server-identified
	rejected  int64           // 429 with the retry budget exhausted
	failed    int64           // any other non-2xx
	updateOps int64           // edge ops carried by accepted update batches
}

// slowRequest remembers the worst-latency success per endpoint with the
// server's request ID, so a bad percentile is traceable to a concrete
// entry in the daemon's /debug/requests ring.
type slowRequest struct {
	lat   time.Duration
	reqID string
}

// failedRequest identifies one failed request by the server's own ID.
type failedRequest struct {
	endpoint string
	status   int
	reqID    string
}

// maxFailSamples bounds the identified-failure list per worker; the
// failure *count* is always exact.
const maxFailSamples = 5

func run(ctx context.Context, cfg appConfig, stdout io.Writer) error {
	logger := cfg.logger
	if logger == nil {
		var err error
		if logger, err = logx.New(os.Stderr, cfg.logFormat, "cncload"); err != nil {
			return err
		}
	}
	mix, err := parseMix(cfg.mix)
	if err != nil {
		return err
	}
	if cfg.concurrency < 1 {
		return fmt.Errorf("concurrency must be >= 1, got %d", cfg.concurrency)
	}
	if cfg.sampleN < 1 {
		return fmt.Errorf("sample must be >= 1, got %d", cfg.sampleN)
	}

	client := &http.Client{Timeout: cfg.timeout}
	base := "http://" + cfg.addr

	info, err := fetchInfo(client, base)
	if err != nil {
		return fmt.Errorf("probe %s: %w", cfg.addr, err)
	}
	pool, err := fetchSample(client, base, cfg.sampleN)
	if err != nil {
		return fmt.Errorf("sample pool: %w", err)
	}
	logger.Info("target probed", "graph", info.Graph, "epoch", info.Epoch,
		"vertices", info.Vertices, "edges", info.Edges, "pool", len(pool))

	// Deterministic weighted schedule: a worker indexes sched[i%len] with
	// its own PRNG-shuffled offsets, so the realized mix matches the
	// weights exactly over each full cycle.
	var sched []string
	for _, o := range mix {
		for i := 0; i < o.weight; i++ {
			sched = append(sched, o.name)
		}
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.duration)
	defer cancel()
	start := time.Now()
	stats := make([]workerStats, cfg.concurrency)
	var wg sync.WaitGroup
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			st := &stats[w]
			st.latencies = make(map[string][]time.Duration)
			st.sent = make(map[string]int64)
			st.cacheSeen = make(map[string]int64)
			st.cacheHits = make(map[string]int64)
			st.retries = make(map[string]int64)
			st.slowest = make(map[string]slowRequest)
			var us updateState
			for i := 0; runCtx.Err() == nil; i++ {
				opName := sched[rng.Intn(len(sched))]
				method, url, body := http.MethodGet, "", []byte(nil)
				nOps := 0
				if opName == "update" {
					url = base + "/v1/update"
					method = http.MethodPost
					body, nOps = buildUpdateBody(rng, info, &us)
				} else {
					url = buildQuery(base, opName, pool, info, cfg.topK, rng)
				}
				// Each request opens its own deterministic trace (seeded by
				// the worker PRNG), so a daemon-side capture entry is
				// attributable to this run and reproducible across reruns.
				tc := reqctx.NewFrom(rng.Uint64)
				var (
					t0     time.Time
					status int
					xCache string
					reqID  string
					err    error
				)
				for attempt := 0; ; attempt++ {
					var retryAfter string
					t0 = time.Now()
					status, xCache, reqID, retryAfter, err = doRequest(runCtx, client, method, url, body, tc.String())
					if err != nil || status != http.StatusTooManyRequests || attempt >= cfg.retries {
						break
					}
					// The admission gate said later: honor its Retry-After
					// with jitter, inside the bounded retry budget.
					if !backoff(runCtx, rng, attempt, retryAfter) {
						break
					}
					st.retries[opName]++
				}
				if runCtx.Err() != nil {
					return // duration elapsed mid-request; drop the torn sample
				}
				if err != nil {
					st.failed++
					continue
				}
				switch {
				case status == http.StatusOK || status == http.StatusAccepted:
					lat := time.Since(t0)
					st.sent[opName]++
					st.latencies[opName] = append(st.latencies[opName], lat)
					if opName == "update" {
						st.updateOps += int64(nOps)
					}
					if xCache != "" {
						st.cacheSeen[opName]++
						if xCache == "HIT" {
							st.cacheHits[opName]++
						}
					}
					if prev, ok := st.slowest[opName]; !ok || lat > prev.lat {
						st.slowest[opName] = slowRequest{lat: lat, reqID: reqID}
					}
				case status == http.StatusTooManyRequests:
					st.rejected++
				default:
					st.failed++
					if len(st.failures) < maxFailSamples {
						st.failures = append(st.failures, failedRequest{endpoint: opName, status: status, reqID: reqID})
					}
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	// Merge the per-worker measurements.
	merged := make(map[string][]time.Duration)
	sent := make(map[string]int64)
	cacheSeen := make(map[string]int64)
	cacheHits := make(map[string]int64)
	retries := make(map[string]int64)
	slowest := make(map[string]slowRequest)
	var failures []failedRequest
	var rejected, failed, total, totalRetries, updateOps int64
	for i := range stats {
		for ep, ls := range stats[i].latencies {
			merged[ep] = append(merged[ep], ls...)
		}
		for ep, n := range stats[i].sent {
			sent[ep] += n
			total += n
		}
		for ep, n := range stats[i].cacheSeen {
			cacheSeen[ep] += n
		}
		for ep, n := range stats[i].cacheHits {
			cacheHits[ep] += n
		}
		for ep, n := range stats[i].retries {
			retries[ep] += n
			totalRetries += n
		}
		for ep, sr := range stats[i].slowest {
			if prev, ok := slowest[ep]; !ok || sr.lat > prev.lat {
				slowest[ep] = sr
			}
		}
		if len(failures) < 2*maxFailSamples {
			failures = append(failures, stats[i].failures...)
		}
		rejected += stats[i].rejected
		failed += stats[i].failed
		updateOps += stats[i].updateOps
	}
	if total == 0 {
		for _, f := range failures {
			fmt.Fprintf(stdout, "cncload: failed %s status=%d request_id=%s\n", f.endpoint, f.status, f.reqID)
		}
		return errors.New("no request completed; is the daemon reachable and the duration sane?")
	}

	qps := float64(total) / wall.Seconds()
	var all []time.Duration
	for _, ls := range merged {
		all = append(all, ls...)
	}
	p50, p95, p99 := percentiles(all)
	fmt.Fprintf(stdout, "cncload: %d ok (%.0f req/s), %d rejected (429 after %d retries), %d failed over %v at concurrency %d\n",
		total, qps, rejected, totalRetries, failed, wall.Round(time.Millisecond), cfg.concurrency)
	fmt.Fprintf(stdout, "cncload: latency p50 %v  p95 %v  p99 %v\n", p50, p95, p99)
	if updateOps > 0 {
		fmt.Fprintf(stdout, "cncload: ingest %d edge ops accepted (%.0f updates/s)\n",
			updateOps, float64(updateOps)/wall.Seconds())
	}
	for _, o := range mix {
		if n := sent[o.name]; n > 0 {
			e50, e95, e99 := percentiles(merged[o.name])
			line := fmt.Sprintf("cncload: %-6s %8d reqs  p50 %v  p95 %v  p99 %v", o.name, n, e50, e95, e99)
			if seen := cacheSeen[o.name]; seen > 0 {
				line += fmt.Sprintf("  cache-hit %.1f%%", 100*float64(cacheHits[o.name])/float64(seen))
			}
			if r := retries[o.name]; r > 0 {
				line += fmt.Sprintf("  retries %d", r)
			}
			if sr, ok := slowest[o.name]; ok && sr.reqID != "" {
				line += fmt.Sprintf("  slowest %v (%s)", sr.lat.Round(time.Microsecond), sr.reqID)
			}
			fmt.Fprintln(stdout, line)
		}
	}
	// Name the failures by the server's own request IDs so they can be
	// pulled straight out of the daemon's /debug/requests error ring.
	for _, f := range failures {
		fmt.Fprintf(stdout, "cncload: failed %s status=%d request_id=%s\n", f.endpoint, f.status, f.reqID)
	}

	if cfg.out != "" {
		report := buildReport(cfg, info, mix, merged, sent, cacheSeen, cacheHits, retries, updateOps, wall)
		if err := benchfmt.WriteFile(cfg.out, report); err != nil {
			return fmt.Errorf("write report: %w", err)
		}
		logger.Info("report written", "path", cfg.out, "rows", len(report.Results))
	}

	failPct := 100 * float64(failed) / float64(total+failed)
	if failPct > cfg.maxFailPct {
		return fmt.Errorf("%.2f%% of requests failed (max %.2f%%)", failPct, cfg.maxFailPct)
	}
	return nil
}

// buildReport maps the serving measurements onto the benchfmt schema:
// one row per endpoint, Graph "serve/<endpoint>", Workers the client
// concurrency, Edges the request count, NsPerEdge mean wall nanoseconds
// per request across the whole mix cell, TaskP* the latency quantiles,
// CacheHitRatio the endpoint's observed X-Cache hit fraction.
func buildReport(cfg appConfig, info *infoResponse, mix []op,
	merged map[string][]time.Duration, sent, cacheSeen, cacheHits, retries map[string]int64,
	updateOps int64, wall time.Duration) *benchfmt.Report {
	manifest := metrics.NewManifest(map[string]string{
		"mode":        "load",
		"target":      cfg.addr,
		"graph":       info.Graph,
		"mix":         cfg.mix,
		"concurrency": strconv.Itoa(cfg.concurrency),
		"duration":    cfg.duration.String(),
	})
	report := &benchfmt.Report{
		Schema:      benchfmt.Schema,
		Label:       cfg.label,
		CreatedUnix: time.Now().Unix(),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Manifest:    &manifest,
	}
	for _, o := range mix {
		n := sent[o.name]
		if n == 0 {
			continue
		}
		p50, p95, p99 := percentiles(merged[o.name])
		var sum time.Duration
		for _, l := range merged[o.name] {
			sum += l
		}
		var hitRatio float64
		if seen := cacheSeen[o.name]; seen > 0 {
			hitRatio = float64(cacheHits[o.name]) / float64(seen)
		}
		row := benchfmt.Result{
			Graph:         "serve/" + o.name,
			Algo:          "serve",
			Workers:       cfg.concurrency,
			Edges:         n,
			Reps:          1,
			ElapsedNanos:  wall.Nanoseconds(),
			NsPerEdge:     float64(sum.Nanoseconds()) / float64(n),
			TaskP50Nanos:  uint64(p50.Nanoseconds()),
			TaskP95Nanos:  uint64(p95.Nanoseconds()),
			TaskP99Nanos:  uint64(p99.Nanoseconds()),
			CacheHitRatio: hitRatio,
			Retries:       uint64(retries[o.name]),
		}
		if o.name == "update" && wall > 0 {
			row.UpdatesPerSec = float64(updateOps) / wall.Seconds()
		}
		report.Results = append(report.Results, row)
	}
	return report
}

// percentiles returns the p50/p95/p99 of ls by nearest-rank on the
// sorted copy; zero durations when ls is empty.
func percentiles(ls []time.Duration) (p50, p95, p99 time.Duration) {
	if len(ls) == 0 {
		return 0, 0, 0
	}
	s := append([]time.Duration(nil), ls...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	at := func(p float64) time.Duration {
		i := int(p*float64(len(s))) - 1
		if i < 0 {
			i = 0
		}
		return s[i]
	}
	return at(0.50), at(0.95), at(0.99)
}

// buildQuery renders one request URL for the given endpoint against the
// sampled pool.
func buildQuery(base, opName string, pool [][2]uint32, info *infoResponse, topK int, rng *rand.Rand) string {
	switch opName {
	case "edge":
		e := pool[rng.Intn(len(pool))]
		return fmt.Sprintf("%s/v1/edge?u=%d&v=%d", base, e[0], e[1])
	case "pair":
		u := rng.Intn(info.Vertices)
		v := rng.Intn(info.Vertices)
		return fmt.Sprintf("%s/v1/pair?u=%d&v=%d", base, u, v)
	case "topk":
		e := pool[rng.Intn(len(pool))]
		return fmt.Sprintf("%s/v1/topk?u=%d&k=%d", base, e[0], topK)
	case "count":
		return base + "/v1/count"
	default:
		panic("unreachable: mix validated in parseMix")
	}
}

// doRequest issues one request carrying the run's traceparent and
// returns the status plus the server's X-Cache verdict, request ID and
// Retry-After header (empty except on 429).
func doRequest(ctx context.Context, client *http.Client, method, url string, body []byte, traceparent string) (status int, xCache, reqID, retryAfter string, err error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, "", "", "", err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if traceparent != "" {
		req.Header.Set(reqctx.TraceparentHeader, traceparent)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", "", "", err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("X-Cache"), resp.Header.Get("X-Request-Id"), resp.Header.Get("Retry-After"), nil
}

// backoff sleeps the jittered retry delay before attempt+1: the
// server's Retry-After (capped at 5s) when it sent one, otherwise an
// exponential base starting at 50ms — either way uniformly jittered
// over [base/2, base) so synchronized workers do not re-arrive as a
// thundering herd. Returns false when ctx ended first.
func backoff(ctx context.Context, rng *rand.Rand, attempt int, retryAfter string) bool {
	base := 50 * time.Millisecond << attempt
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs >= 0 {
		base = time.Duration(secs) * time.Second
		switch {
		case base > 5*time.Second:
			base = 5 * time.Second
		case base == 0:
			base = 50 * time.Millisecond
		}
	}
	d := base/2 + time.Duration(rng.Int63n(int64(base/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// updateState tracks the edges a worker has inserted and not yet
// deleted: deletes only ever target this set, so update load never
// removes an edge of the resident graph (which would fail concurrent
// edge queries drawn from the sample pool).
type updateState struct {
	inserted [][2]uint32
}

// updateRingMax bounds the per-worker inserted-edge memory.
const updateRingMax = 256

// buildUpdateBody renders one random edge-mutation batch (1–4 ops) and
// returns it with its op count.
func buildUpdateBody(rng *rand.Rand, info *infoResponse, us *updateState) ([]byte, int) {
	type jsonOp struct {
		Op string `json:"op"`
		U  uint32 `json:"u"`
		V  uint32 `json:"v"`
	}
	n := 1 + rng.Intn(4)
	ops := make([]jsonOp, 0, n)
	for i := 0; i < n; i++ {
		if len(us.inserted) > 0 && (rng.Intn(2) == 0 || len(us.inserted) >= updateRingMax) {
			j := rng.Intn(len(us.inserted))
			e := us.inserted[j]
			us.inserted = append(us.inserted[:j], us.inserted[j+1:]...)
			ops = append(ops, jsonOp{Op: "delete", U: e[0], V: e[1]})
			continue
		}
		u := uint32(rng.Intn(info.Vertices))
		v := uint32(rng.Intn(info.Vertices - 1))
		if v >= u {
			v++
		}
		us.inserted = append(us.inserted, [2]uint32{u, v})
		ops = append(ops, jsonOp{Op: "insert", U: u, V: v})
	}
	body, err := json.Marshal(map[string]any{"ops": ops})
	if err != nil {
		panic(err) // a map of fixed-shape structs cannot fail to marshal
	}
	return body, len(ops)
}

// parseMix parses "edge=8,pair=1,topk=1" into weighted ops, preserving
// the written order.
func parseMix(s string) ([]op, error) {
	valid := map[string]bool{"edge": true, "pair": true, "topk": true, "count": true, "update": true}
	var mix []op
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		name, w, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q: want name=weight", part)
		}
		if !valid[name] {
			return nil, fmt.Errorf("mix entry %q: unknown endpoint (want edge, pair, topk, count, update)", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("mix entry %q: duplicate endpoint", part)
		}
		seen[name] = true
		weight, err := strconv.Atoi(w)
		if err != nil || weight < 1 {
			return nil, fmt.Errorf("mix entry %q: weight must be a positive integer", part)
		}
		mix = append(mix, op{name: name, weight: weight})
	}
	if len(mix) == 0 {
		return nil, errors.New("empty mix")
	}
	return mix, nil
}

// infoResponse is the subset of /v1/info the generator needs.
type infoResponse struct {
	Graph    string `json:"graph"`
	Epoch    uint64 `json:"epoch"`
	Vertices int    `json:"vertices"`
	Edges    int64  `json:"edges"`
}

func fetchInfo(client *http.Client, base string) (*infoResponse, error) {
	resp, err := client.Get(base + "/v1/info")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/v1/info: %s", resp.Status)
	}
	var info infoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, err
	}
	if info.Vertices == 0 {
		return nil, errors.New("/v1/info reports an empty graph")
	}
	return &info, nil
}

func fetchSample(client *http.Client, base string, n int) ([][2]uint32, error) {
	resp, err := client.Get(fmt.Sprintf("%s/v1/sample?n=%d", base, n))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/v1/sample: %s", resp.Status)
	}
	var out struct {
		Edges [][2]uint32 `json:"edges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	if len(out.Edges) == 0 {
		return nil, errors.New("/v1/sample returned no edges")
	}
	return out.Edges, nil
}
