package cncount_test

import (
	"testing"

	"cncount"
	"cncount/internal/verify"
)

// TestEndToEndAllAlgorithmsAllProcessors is the whole-system agreement
// gate: every algorithm on every execution target (host engine, modeled
// CPU, modeled KNL in every memory mode, simulated GPU with and without
// co-processing) must produce the identical count array on a profile
// graph, and that array must satisfy the reference checker and the
// triangle identity.
func TestEndToEndAllAlgorithmsAllProcessors(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end sweep is slow")
	}
	g0, err := cncount.GenerateProfile("LJ", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := cncount.ReorderByDegree(g0)
	want := verify.Counts(g)
	if err := verify.CheckTriangleIdentity(g, want); err != nil {
		t.Fatal(err)
	}

	check := func(label string, counts []uint32) {
		t.Helper()
		if len(counts) != len(want) {
			t.Fatalf("%s: %d counts, want %d", label, len(counts), len(want))
		}
		for e := range want {
			if counts[e] != want[e] {
				t.Fatalf("%s: cnt[%d] = %d, want %d", label, e, counts[e], want[e])
			}
		}
	}

	for _, algo := range cncount.Algorithms {
		res, err := cncount.Count(g, cncount.Options{Algorithm: algo})
		if err != nil {
			t.Fatal(err)
		}
		check("host/"+algo.String(), res.Counts)

		for _, proc := range cncount.Processors {
			modes := []cncount.MemoryMode{cncount.ModeDDR}
			if proc == cncount.ProcKNL {
				modes = []cncount.MemoryMode{cncount.ModeDDR, cncount.ModeFlat, cncount.ModeCache}
			}
			if proc == cncount.ProcGPU && algo == cncount.AlgoAdaptive {
				// The GPU model runs the paper's fixed-kernel passes; the
				// per-edge adaptive dispatcher is host/CPU/KNL-only and cnc
				// rejects the combination up front.
				continue
			}
			for _, mode := range modes {
				for _, cp := range []bool{false, true} {
					if proc != cncount.ProcGPU && cp {
						continue // co-processing is a GPU-only concept
					}
					sim, err := cncount.Simulate(g, cncount.SimOptions{
						Processor:    proc,
						Algorithm:    algo,
						MemMode:      mode,
						CoProcessing: cp,
					})
					if err != nil {
						t.Fatalf("%v/%v/%v: %v", proc, algo, mode, err)
					}
					check(proc.String()+"/"+algo.String()+"/"+mode.String(), sim.Counts)
					if sim.Modeled <= 0 {
						t.Errorf("%v/%v: nonpositive modeled time", proc, algo)
					}
				}
			}
		}
	}

	// The SCAN pipelines and the dynamic maintainer must also agree with
	// the same counts.
	scanA, err := cncount.SCAN(g, cncount.ScanParams{Eps: 0.5, Mu: 3})
	if err != nil {
		t.Fatal(err)
	}
	scanB, err := cncount.SCANFromCounts(g, want, cncount.ScanParams{Eps: 0.5, Mu: 3})
	if err != nil {
		t.Fatal(err)
	}
	if scanA.NumClusters != scanB.NumClusters {
		t.Errorf("SCAN strategies disagree: %d vs %d clusters",
			scanA.NumClusters, scanB.NumClusters)
	}

	dg, err := cncount.DynamicFromGraph(g, want)
	if err != nil {
		t.Fatal(err)
	}
	if got := dg.Triangles(); got != verify.Triangles(g) {
		t.Errorf("dynamic triangles = %d, want %d", got, verify.Triangles(g))
	}
}
