#!/bin/sh
# walsmoke: end-to-end smoke test of durable streaming ingestion.
#
# Builds cncd, starts it with a WAL directory, posts edge-mutation
# batches to /v1/update until several are durably acknowledged, then
# kills the daemon dead with SIGKILL (no drain, no WAL close). A second
# daemon on the same WAL directory must print the replay banner, resume
# at the next sequence number, and serve a graph whose maintained
# triangle total matches a from-scratch /v1/count recount exactly —
# the no-silent-divergence contract. Exits non-zero on any failure.
# Run from the repo root (the Makefile's `make walsmoke` does).
set -eu

GO=${GO:-go}
TMP=$(mktemp -d)
CNCD_PID=""

fail() {
	echo "walsmoke: FAIL: $*" >&2
	[ -f "$TMP/cncd.log" ] && sed 's/^/walsmoke:   cncd: /' "$TMP/cncd.log" >&2
	[ -f "$TMP/cncd2.log" ] && sed 's/^/walsmoke:   cncd2: /' "$TMP/cncd2.log" >&2
	exit 1
}

cleanup() {
	[ -n "$CNCD_PID" ] && kill -9 "$CNCD_PID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

$GO build -o "$TMP/cncd" ./cmd/cncd
WALDIR="$TMP/wal"

# wait_addr LOGFILE: poll for the ready line, echo the bound address.
wait_addr() {
	i=0
	while [ $i -lt 600 ]; do
		A=$(sed -n 's/^cncd listening on \(.*\)$/\1/p' "$1")
		if [ -n "$A" ]; then
			echo "$A"
			return 0
		fi
		kill -0 "$CNCD_PID" 2>/dev/null || return 1
		i=$((i + 1))
		sleep 0.1
	done
	return 1
}

# Phase 1: ingest. Start with a WAL, wait for the ingester (first boot
# replays an empty log, so /v1/update 503s briefly), then commit batches.
"$TMP/cncd" -profile WI -scale 0.05 -listen 127.0.0.1:0 -threads 2 \
	-wal "$WALDIR" -fsync batch >"$TMP/cncd.log" 2>&1 &
CNCD_PID=$!
ADDR=$(wait_addr "$TMP/cncd.log") || fail "cncd never listened"

i=0
while ! curl -fsS "http://$ADDR/v1/info" 2>/dev/null | grep -q '"durable":true'; do
	i=$((i + 1))
	[ $i -lt 300 ] || fail "ingester never came up"
	sleep 0.1
done

ACKS=0
n=0
while [ $n -lt 5 ]; do
	u=$((2 * n))
	v=$((2 * n + 1))
	CODE=$(curl -s -o "$TMP/upd.json" -w '%{http_code}' -X POST \
		-H 'Content-Type: application/json' \
		-d "{\"ops\":[{\"op\":\"insert\",\"u\":$u,\"v\":$v}]}" \
		"http://$ADDR/v1/update")
	[ "$CODE" = "202" ] || fail "/v1/update = $CODE: $(cat "$TMP/upd.json")"
	ACKS=$((ACKS + 1))
	n=$((n + 1))
done
grep -q '"seq":5' "$TMP/upd.json" || fail "last ack is not seq 5: $(cat "$TMP/upd.json")"

# Phase 2: crash. SIGKILL — the daemon gets no chance to flush or close.
kill -9 "$CNCD_PID"
wait "$CNCD_PID" 2>/dev/null || true
CNCD_PID=""

# Phase 3: recover. Same WAL directory; the banner must cover every
# acknowledged batch.
"$TMP/cncd" -profile WI -scale 0.05 -listen 127.0.0.1:0 -threads 2 \
	-wal "$WALDIR" -fsync batch >"$TMP/cncd2.log" 2>&1 &
CNCD_PID=$!
ADDR=$(wait_addr "$TMP/cncd2.log") || fail "recovering cncd never listened"

i=0
while ! grep -q 'cncd wal replayed:' "$TMP/cncd2.log"; do
	i=$((i + 1))
	[ $i -lt 300 ] || fail "no replay banner after restart"
	sleep 0.1
done
grep -q "cncd wal replayed: batches=$ACKS " "$TMP/cncd2.log" \
	|| fail "replay banner does not cover $ACKS acknowledged batches: $(grep 'wal replayed' "$TMP/cncd2.log")"

# Phase 4: verify. Replayed maintained counts must match a fresh
# recount of the served graph, and sequence numbering must resume.
i=0
while ! curl -fsS "http://$ADDR/v1/info" >"$TMP/info.json" 2>/dev/null \
	|| ! grep -q '"durable":true' "$TMP/info.json"; do
	i=$((i + 1))
	[ $i -lt 300 ] || fail "recovered ingester never came up"
	sleep 0.1
done
grep -q "\"last_seq\":$ACKS" "$TMP/info.json" || fail "recovered last_seq != $ACKS: $(cat "$TMP/info.json")"

MAINTAINED=$(sed -n 's/.*"triangles":\([0-9]*\).*/\1/p' "$TMP/info.json")
[ -n "$MAINTAINED" ] || fail "/v1/info lacks the maintained triangle total"
curl -fsS "http://$ADDR/v1/count?workers=2" >"$TMP/count.json" || fail "/v1/count unreachable"
RECOUNT=$(sed -n 's/.*"triangles":\([0-9]*\).*/\1/p' "$TMP/count.json")
[ "$MAINTAINED" = "$RECOUNT" ] \
	|| fail "silent divergence: maintained=$MAINTAINED recount=$RECOUNT"

CODE=$(curl -s -o "$TMP/upd2.json" -w '%{http_code}' -X POST \
	-H 'Content-Type: application/json' \
	-d '{"ops":[{"op":"insert","u":1,"v":4}]}' "http://$ADDR/v1/update")
[ "$CODE" = "202" ] || fail "post-recovery /v1/update = $CODE"
grep -q "\"seq\":$((ACKS + 1))" "$TMP/upd2.json" \
	|| fail "post-recovery seq did not resume at $((ACKS + 1)): $(cat "$TMP/upd2.json")"

kill -TERM "$CNCD_PID"
wait "$CNCD_PID" || fail "recovered cncd did not drain cleanly"
CNCD_PID=""

echo "walsmoke: ok (replayed $ACKS batches, maintained=$MAINTAINED == recount=$RECOUNT)"
