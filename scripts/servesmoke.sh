#!/bin/sh
# servesmoke: end-to-end smoke test of the resident counting service.
#
# Builds cncd and cncload, starts the daemon on an ephemeral port with a
# tiny profile, exercises every query endpoint (edge/pair/topk/count/
# sample/info) plus the mounted observability plane, checks the result
# cache reports MISS then HIT and that the serving counters surface on
# /metrics, runs a short cncload burst and validates its benchfmt
# report, then SIGTERMs the daemon and requires a clean drain (exit 0).
# Exits non-zero on any failure. Run from the repo root (the Makefile's
# `make servesmoke` does).
set -eu

GO=${GO:-go}
TMP=$(mktemp -d)
CNCD_PID=""

fail() {
	echo "servesmoke: FAIL: $*" >&2
	[ -f "$TMP/cncd.log" ] && sed 's/^/servesmoke:   cncd: /' "$TMP/cncd.log" >&2
	exit 1
}

cleanup() {
	[ -n "$CNCD_PID" ] && kill "$CNCD_PID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

$GO build -o "$TMP/cncd" ./cmd/cncd
$GO build -o "$TMP/cncload" ./cmd/cncload

"$TMP/cncd" -profile WI -scale 0.05 -listen 127.0.0.1:0 -threads 1 \
	>"$TMP/cncd.log" 2>&1 &
CNCD_PID=$!

# Wait for the ready line carrying the bound address.
ADDR=""
i=0
while [ $i -lt 300 ]; do
	ADDR=$(sed -n 's/^cncd listening on \(.*\)$/\1/p' "$TMP/cncd.log")
	[ -n "$ADDR" ] && break
	kill -0 "$CNCD_PID" 2>/dev/null || fail "cncd exited before listening"
	i=$((i + 1))
	sleep 0.1
done
[ -n "$ADDR" ] || fail "cncd address never appeared"

# /healthz via the mounted obs plane.
HEALTH=$(curl -fsS "http://$ADDR/healthz") || fail "/healthz unreachable"
[ "$HEALTH" = "ok" ] || fail "/healthz = '$HEALTH', want 'ok'"

# /v1/info: the daemon knows its graph.
curl -fsS "http://$ADDR/v1/info" >"$TMP/info.json" || fail "/v1/info unreachable"
grep -q '"graph":"WI"' "$TMP/info.json" || fail "/v1/info lacks the graph name"
grep -q '"epoch":1' "$TMP/info.json" || fail "/v1/info epoch != 1"

# /v1/sample feeds a real edge for the point queries.
curl -fsS "http://$ADDR/v1/sample?n=4" >"$TMP/sample.json" || fail "/v1/sample unreachable"
U=$(sed -n 's/.*"edges":\[\[\([0-9]*\),.*/\1/p' "$TMP/sample.json")
V=$(sed -n 's/.*"edges":\[\[[0-9]*,\([0-9]*\).*/\1/p' "$TMP/sample.json")
[ -n "$U" ] && [ -n "$V" ] || fail "/v1/sample returned no parseable edge"

# /v1/edge: MISS on the first query, HIT on the repeat, same body.
curl -fsS -D "$TMP/h1" "http://$ADDR/v1/edge?u=$U&v=$V" >"$TMP/e1.json" || fail "/v1/edge unreachable"
grep -qi '^x-cache: MISS' "$TMP/h1" || fail "first /v1/edge not a cache MISS"
curl -fsS -D "$TMP/h2" "http://$ADDR/v1/edge?u=$U&v=$V" >"$TMP/e2.json" || fail "/v1/edge repeat failed"
grep -qi '^x-cache: HIT' "$TMP/h2" || fail "repeat /v1/edge not a cache HIT"
cmp -s "$TMP/e1.json" "$TMP/e2.json" || fail "cached /v1/edge body differs from computed"
grep -q '"count":' "$TMP/e1.json" || fail "/v1/edge lacks a count"

# /v1/pair and /v1/topk answer.
curl -fsS "http://$ADDR/v1/pair?u=$U&v=$V" | grep -q '"count":' || fail "/v1/pair lacks a count"
curl -fsS "http://$ADDR/v1/topk?u=$U&k=3" | grep -q '"results":' || fail "/v1/topk lacks results"

# /v1/count: a full recount multiplexed onto the runtime.
curl -fsS "http://$ADDR/v1/count?algo=bmp&workers=1" >"$TMP/count.json" || fail "/v1/count unreachable"
grep -q '"triangles":' "$TMP/count.json" || fail "/v1/count lacks a triangle count"

# Serving counters surface on the shared /metrics.
curl -fsS "http://$ADDR/metrics" >"$TMP/metrics.prom" || fail "/metrics unreachable"
for series in \
	'cncount_counter_total{name="serve.cache_hits"}' \
	'cncount_counter_total{name="serve.cache_misses"}' \
	'cncount_counter_total{name="serve.req_edge"}'; do
	grep -qF "$series" "$TMP/metrics.prom" || fail "/metrics lacks $series"
done

# A short load burst writes a valid serving report.
"$TMP/cncload" -addr "$ADDR" -duration 1s -concurrency 4 \
	-mix edge=8,pair=1,topk=1 -sample 64 -label smoke \
	-out "$TMP/BENCH_servesmoke.json" >"$TMP/load.out" 2>&1 \
	|| fail "cncload run failed: $(cat "$TMP/load.out")"
grep -q 'req/s' "$TMP/load.out" || fail "cncload printed no throughput"
grep -q '"schema": "cncount-bench/v1"' "$TMP/BENCH_servesmoke.json" || fail "load report lacks the schema"
grep -q '"graph": "serve/edge"' "$TMP/BENCH_servesmoke.json" || fail "load report lacks the serve/edge row"
grep -q '"task_p99_nanos"' "$TMP/BENCH_servesmoke.json" || fail "load report lacks p99 latency"

# SIGTERM drains cleanly: exit status 0 and the drain log line.
kill -TERM "$CNCD_PID"
DRAIN_RC=0
wait "$CNCD_PID" || DRAIN_RC=$?
CNCD_PID=""
[ "$DRAIN_RC" -eq 0 ] || fail "cncd drain exited $DRAIN_RC"
grep -q "drained, exiting" "$TMP/cncd.log" || fail "cncd never logged a completed drain"

echo "servesmoke: ok (served http://$ADDR/)"
