#!/bin/sh
# obssmoke: end-to-end smoke test of the live observability plane.
#
# Builds cnc, runs a tiny profile with the plane mounted on an ephemeral
# port and held open after the run (-httpwait), scrapes /healthz,
# /metrics, /progress, /timeseries.json and /dashboard, and validates
# the responses: liveness, valid Prometheus exposition with the
# expected series, a finished progress payload, a schema-versioned
# flight-recorder ring and the embedded dashboard page. Exits non-zero
# on any failure. Run from the repo root (the Makefile's
# `make obssmoke` does).
set -eu

GO=${GO:-go}
TMP=$(mktemp -d)
CNC_PID=""

fail() {
	echo "obssmoke: FAIL: $*" >&2
	[ -f "$TMP/out.log" ] && sed 's/^/obssmoke:   cnc: /' "$TMP/out.log" >&2
	exit 1
}

cleanup() {
	[ -n "$CNC_PID" ] && kill "$CNC_PID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

$GO build -o "$TMP/cnc" ./cmd/cnc

# -httpwait holds the plane open after the (sub-second) run so the
# scrapes below race nothing; the trap kills cnc long before 60s.
"$TMP/cnc" -profile WI -scale 0.05 -http 127.0.0.1:0 -httpwait 60s \
	>"$TMP/out.log" 2>&1 &
CNC_PID=$!

# Wait for the plane address, then for the run to complete (the holding
# line prints after counting finishes, so /metrics and /progress are
# settled when we scrape).
ADDR=""
i=0
while [ $i -lt 300 ]; do
	ADDR=$(sed -n 's#.*observability plane listening on http://\([^/]*\)/.*#\1#p' "$TMP/out.log")
	if [ -n "$ADDR" ] && grep -q "holding observability plane" "$TMP/out.log"; then
		break
	fi
	kill -0 "$CNC_PID" 2>/dev/null || fail "cnc exited before the plane came up"
	i=$((i + 1))
	sleep 0.1
done
[ -n "$ADDR" ] || fail "plane address never appeared in cnc output"
grep -q "holding observability plane" "$TMP/out.log" || fail "run never completed"

# /healthz: liveness.
HEALTH=$(curl -fsS "http://$ADDR/healthz") || fail "/healthz unreachable"
[ "$HEALTH" = "ok" ] || fail "/healthz = '$HEALTH', want 'ok'"

# /metrics: Prometheus exposition with the run's series, run finished.
curl -fsS "http://$ADDR/metrics" >"$TMP/metrics.prom" || fail "/metrics unreachable"
for series in \
	'cncount_build_info{' \
	'cncount_phase_seconds_total{phase="core.count"}' \
	'cncount_sched_worker_units_total{' \
	'cncount_progress_remaining_units 0'; do
	grep -qF "$series" "$TMP/metrics.prom" || fail "/metrics lacks $series"
done
# Every non-comment line must look like `name{labels} value`.
if grep -vE '^(#|[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? [^ ]+$)' "$TMP/metrics.prom" | grep -q .; then
	fail "/metrics has malformed exposition lines"
fi

# /progress: JSON of a finished region.
curl -fsS "http://$ADDR/progress" >"$TMP/progress.json" || fail "/progress unreachable"
grep -q '"total_units"' "$TMP/progress.json" || fail "/progress lacks total_units"
grep -q '"remaining_units": 0' "$TMP/progress.json" || fail "/progress remaining != 0"
grep -q '"active": false' "$TMP/progress.json" || fail "/progress still active after run"

# /timeseries.json: the flight recorder's ring, schema-versioned, with
# at least one sample (the recorder runs for the whole -httpwait hold,
# so by now the ring cannot be empty).
curl -fsS "http://$ADDR/timeseries.json" >"$TMP/timeseries.json" || fail "/timeseries.json unreachable"
grep -q '"cncount-timeseries/v1"' "$TMP/timeseries.json" || fail "/timeseries.json lacks schema cncount-timeseries/v1"
grep -q '"samples"' "$TMP/timeseries.json" || fail "/timeseries.json lacks samples array"
grep -q '"unix_nanos"' "$TMP/timeseries.json" || fail "/timeseries.json has an empty ring"

# /dashboard: the embedded zero-dependency HTML page.
curl -fsS "http://$ADDR/dashboard" >"$TMP/dashboard.html" || fail "/dashboard unreachable"
grep -q 'cncount dashboard' "$TMP/dashboard.html" || fail "/dashboard lacks the page title"
grep -qi '<html' "$TMP/dashboard.html" || fail "/dashboard is not HTML"
# Zero-dependency means zero external fetches: no http(s) references.
if grep -Eq 'src="https?://|href="https?://' "$TMP/dashboard.html"; then
	fail "/dashboard references external assets"
fi

kill "$CNC_PID"
wait "$CNC_PID" 2>/dev/null || true
CNC_PID=""
echo "obssmoke: ok (scraped http://$ADDR/)"
