#!/bin/sh
# reqsmoke: end-to-end smoke test of request-scoped observability.
#
# Builds cncd, starts it with request capture and access logging
# enabled, and verifies the per-request contract over real HTTP: a
# caller's W3C traceparent is continued (same trace ID, fresh child
# span) and echoed with a server request ID; a hostile traceparent
# degrades to a fresh context instead of an error; error responses
# carry the request ID in both header and JSON body; the capture ring
# serves schema-versioned /debug/requests.json with span trees; the
# inspector page at /debug/requests is fully self-contained (no
# external assets); the RED request families surface on /metrics; and
# the access log emits one structured event per request. Exits non-zero
# on any failure. Run from the repo root (the Makefile's `make
# reqsmoke` does).
set -eu

GO=${GO:-go}
TMP=$(mktemp -d)
CNCD_PID=""

fail() {
	echo "reqsmoke: FAIL: $*" >&2
	[ -f "$TMP/cncd.log" ] && sed 's/^/reqsmoke:   cncd: /' "$TMP/cncd.log" >&2
	exit 1
}

cleanup() {
	[ -n "$CNCD_PID" ] && kill "$CNCD_PID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

$GO build -o "$TMP/cncd" ./cmd/cncd

"$TMP/cncd" -profile WI -scale 0.05 -listen 127.0.0.1:0 -threads 1 \
	-capture 8 -accesslog -logfmt json >"$TMP/cncd.log" 2>&1 &
CNCD_PID=$!

ADDR=""
i=0
while [ $i -lt 300 ]; do
	ADDR=$(sed -n 's/^cncd listening on \(.*\)$/\1/p' "$TMP/cncd.log")
	[ -n "$ADDR" ] && break
	kill -0 "$CNCD_PID" 2>/dev/null || fail "cncd exited before listening"
	i=$((i + 1))
	sleep 0.1
done
[ -n "$ADDR" ] || fail "cncd address never appeared"

# A traced recount: the response continues the caller's trace with a
# fresh child span and names itself with a server request ID.
TRACE=4bf92f3577b34da6a3ce929d0e0e4736
PARENT=00f067aa0ba902b7
curl -fsS -D "$TMP/h1" -H "traceparent: 00-$TRACE-$PARENT-01" \
	"http://$ADDR/v1/count?algo=bmp&workers=1" >"$TMP/count.json" \
	|| fail "/v1/count unreachable"
grep -qi "^x-trace-id: $TRACE" "$TMP/h1" || fail "X-Trace-Id does not echo the caller's trace"
grep -qi "^traceparent: 00-$TRACE-" "$TMP/h1" || fail "response traceparent does not continue the trace"
grep -qi "^traceparent: 00-$TRACE-$PARENT-" "$TMP/h1" && fail "response reused the caller's span id"
REQID=$(sed -n 's/^[Xx]-[Rr]equest-[Ii]d: \(req-[0-9a-f]*\).*/\1/p' "$TMP/h1")
[ -n "$REQID" ] || fail "no X-Request-Id on /v1/count"

# A hostile traceparent degrades to a fresh server context, never an error.
curl -fsS -D "$TMP/h2" -H "traceparent: 00-zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz-$PARENT-01" \
	"http://$ADDR/v1/info" >/dev/null || fail "hostile traceparent broke /v1/info"
grep -qi '^x-trace-id: [0-9a-f]\{32\}' "$TMP/h2" || fail "hostile traceparent: no fresh trace id"
grep -qi "^x-trace-id: $TRACE" "$TMP/h2" && fail "hostile traceparent was accepted"

# Error responses carry the request ID in header and JSON body alike.
ERRBODY=$(curl -sS -D "$TMP/h3" "http://$ADDR/v1/edge?u=99999999&v=1")
grep -q '^HTTP/[0-9.]* 404' "$TMP/h3" || fail "out-of-range edge did not 404"
ERRID=$(sed -n 's/^[Xx]-[Rr]equest-[Ii]d: \(req-[0-9a-f]*\).*/\1/p' "$TMP/h3")
[ -n "$ERRID" ] || fail "404 lacks X-Request-Id"
echo "$ERRBODY" | grep -qF "\"request_id\":\"$ERRID\"" || fail "404 body request_id != header: $ERRBODY"

# The capture ring: schema-versioned, retains the recount with its span
# tree reaching sched-level worker spans.
curl -fsS "http://$ADDR/debug/requests.json" >"$TMP/requests.json" || fail "/debug/requests.json unreachable"
grep -qF '"schema": "cncd-requests/v1"' "$TMP/requests.json" || fail "requests.json lacks the schema tag"
grep -qF "\"id\": \"$REQID\"" "$TMP/requests.json" || fail "recount $REQID not in the capture ring"
grep -qF "\"trace_id\": \"$TRACE\"" "$TMP/requests.json" || fail "capture entry lost the trace id"
grep -qF '"name": "serve.count"' "$TMP/requests.json" || fail "capture entry lacks the serve.count span"
grep -qF '"name": "core.count.BMP"' "$TMP/requests.json" || fail "span tree does not reach sched-level spans"
grep -qF "\"id\": \"$ERRID\"" "$TMP/requests.json" || fail "errored request $ERRID not in the error ring"

# The inspector page: served, self-contained, wired to the JSON feed.
curl -fsS "http://$ADDR/debug/requests" >"$TMP/inspector.html" || fail "/debug/requests unreachable"
grep -q '<title>cncd requests</title>' "$TMP/inspector.html" || fail "inspector page has no title"
grep -Eq 'src="https?://|href="https?://' "$TMP/inspector.html" && fail "inspector references external assets"
grep -qF '/debug/requests.json' "$TMP/inspector.html" || fail "inspector does not fetch the JSON feed"

# RED request families surface on the shared /metrics.
curl -fsS "http://$ADDR/metrics" >"$TMP/metrics.prom" || fail "/metrics unreachable"
for series in \
	'cncd_request_duration_seconds_bucket{endpoint="count",status="200"' \
	'cncd_requests_in_flight' \
	'cncd_requests_rejected_total' \
	'cncd_request_slowest_seconds{endpoint="count"'; do
	grep -qF "$series" "$TMP/metrics.prom" || fail "/metrics lacks $series"
done

# The access log carries one structured event per request with its IDs.
grep -qF "\"request_id\":\"$REQID\"" "$TMP/cncd.log" || fail "access log never names $REQID"
grep -qF "\"trace_id\":\"$TRACE\"" "$TMP/cncd.log" || fail "access log never names trace $TRACE"
grep -qF '"msg":"request"' "$TMP/cncd.log" || fail "no structured access-log events"

# SIGTERM still drains cleanly with observability enabled.
kill -TERM "$CNCD_PID"
DRAIN_RC=0
wait "$CNCD_PID" || DRAIN_RC=$?
CNCD_PID=""
[ "$DRAIN_RC" -eq 0 ] || fail "cncd drain exited $DRAIN_RC"
grep -q "drained, exiting" "$TMP/cncd.log" || fail "cncd never logged a completed drain"

echo "reqsmoke: ok (inspected http://$ADDR/debug/requests)"
