// Package cncount computes the common neighbor count |N(u) ∩ N(v)| for
// every edge (u,v) of an undirected graph — the all-edge common neighbor
// counting operation of Che et al., "Accelerating All-Edge Common Neighbor
// Counting on Three Processors" (ICPP 2019) — together with the downstream
// analytics that consume the counts (structural clustering, similarity
// queries, triangle counting, recommendation).
//
// Two algorithm families are provided, as in the paper:
//
//   - MPS, a merge-based algorithm combining a vectorizable block-wise
//     merge with a pivot-skip (galloping) merge for degree-skewed pairs;
//   - BMP, a bitmap-index algorithm that dynamically builds a bitmap over
//     N(u) and probes it for each neighbor list, optionally through a small
//     range-filter bitmap (RF) sized to stay cache-resident.
//
// Counting runs in parallel on the host with the paper's dynamic
// task-scheduling skeleton. The sub-packages internal/archsim and
// internal/gpusim additionally model the paper's three processors (Xeon
// CPU, Knights Landing, TITAN Xp GPU) to regenerate its evaluation; see
// the Simulate* functions.
//
// # Quick start
//
//	g, _ := cncount.GenerateProfile("TW", 0.1)
//	res, _ := cncount.Count(g, cncount.Options{Algorithm: cncount.AlgoBMP, Reorder: true})
//	fmt.Println("triangles:", res.TriangleCount())
package cncount

import (
	"context"
	"errors"
	"fmt"

	"cncount/internal/adaptive"
	"cncount/internal/core"
	"cncount/internal/gen"
	"cncount/internal/graph"
	"cncount/internal/metrics"
	"cncount/internal/sched"
	"cncount/internal/trace"
)

// Metrics is the runtime observability collector: phase timings, counters,
// and per-worker scheduler tallies, snapshottable as JSON. A nil *Metrics
// disables all collection; see Options.Metrics.
type Metrics = metrics.Collector

// MetricsSnapshot is the JSON-encodable view of a Metrics collector.
type MetricsSnapshot = metrics.Snapshot

// NewMetrics returns an enabled metrics collector.
func NewMetrics() *Metrics { return metrics.New() }

// Progress is a live progress source for a counting run: remaining units
// and per-worker heartbeats, sampled while the run is in flight. Pass one
// through Options.Progress and serve it with the observability plane
// (internal/obs) or poll (*Progress).Sample directly. A nil *Progress
// disables progress recording; see Options.Progress.
type Progress = sched.Progress

// ProgressSample is one point-in-time reading of a Progress source.
type ProgressSample = sched.ProgressSample

// NewProgress returns an enabled progress source.
func NewProgress() *Progress { return sched.NewProgress() }

// Manifest records the build, environment and resolved configuration a
// run executed under; embed it into metrics snapshots with
// (*Metrics).SetManifest. See metrics.Manifest.
type Manifest = metrics.Manifest

// NewManifest collects the build/environment manifest, attaching the
// given resolved run config (may be nil).
func NewManifest(config map[string]string) Manifest { return metrics.NewManifest(config) }

// Tracer is the span-level execution tracer: named spans on a per-worker
// timeline, serialized as Chrome trace-event JSON loadable in Perfetto or
// chrome://tracing. A nil *Tracer disables all tracing; see Options.Trace
// and (*Tracer).WriteJSON.
type Tracer = trace.Tracer

// NewTracer returns an enabled execution tracer whose epoch (timeline
// zero) is the moment of the call.
func NewTracer() *Tracer { return trace.New() }

// Graph is an undirected graph in CSR form. Both directions of every edge
// are stored and adjacency lists are sorted ascending; see
// (*Graph).Neighbors and (*Graph).EdgeOffset.
type Graph = graph.CSR

// Edge is one undirected edge of an edge list.
type Edge = graph.Edge

// VertexID identifies a vertex; IDs are dense in [0, NumVertices).
type VertexID = graph.VertexID

// Stats summarizes a graph (vertex/edge counts, average and maximum
// degree).
type Stats = graph.Stats

// Reordering records a vertex relabeling; see ReorderByDegree.
type Reordering = graph.Reordering

func reorderByDegree(g *Graph) (*Graph, *Reordering) { return graph.ReorderByDegree(g) }

// MapCounts translates a count array computed on a reordered graph back to
// the original graph's edge offsets.
func MapCounts(original, reordered *Graph, r *Reordering, counts []uint32) []uint32 {
	return graph.MapCounts(original, reordered, r, counts)
}

// NewGraph builds a Graph from an undirected edge list. Self-loops are
// dropped and duplicate edges merged.
func NewGraph(numVertices int, edges []Edge) (*Graph, error) {
	return graph.FromEdges(numVertices, edges)
}

// NewGraphParallel is NewGraph with the construction phases parallelized
// across workers (< 1 = all cores); prefer it for very large edge lists.
func NewGraphParallel(numVertices int, edges []Edge, workers int) (*Graph, error) {
	return graph.FromEdgesParallel(numVertices, edges, workers)
}

// ConnectedComponents labels each vertex with its connected component and
// returns the component count.
func ConnectedComponents(g *Graph) (compOf []int32, numComponents int) {
	return graph.ConnectedComponents(g)
}

// LargestComponent extracts the induced subgraph of the largest connected
// component, returning it with the new→old vertex mapping.
func LargestComponent(g *Graph) (*Graph, []VertexID, error) {
	return graph.LargestComponent(g)
}

// InducedSubgraph extracts the subgraph induced by the given vertices,
// renumbered densely, with the new→old vertex mapping.
func InducedSubgraph(g *Graph, keep []VertexID) (*Graph, []VertexID, error) {
	return graph.InducedSubgraph(g, keep)
}

// CoreNumbers returns each vertex's k-core number.
func CoreNumbers(g *Graph) []int32 { return graph.CoreNumbers(g) }

// ReorderByDegeneracy relabels vertices by descending core number — an
// alternative preprocessing to ReorderByDegree for the bitmap algorithms,
// compared in the ordering ablation benchmark.
func ReorderByDegeneracy(g *Graph) (*Graph, *Reordering) {
	return graph.ReorderByDegeneracy(g)
}

// LoadGraph reads a graph from a text edge list, or from the binary CSR
// format when the path ends in ".bin".
func LoadGraph(path string) (*Graph, error) { return graph.LoadFile(path) }

// LoadGraphMetrics is LoadGraph recording parse/build phase durations into
// mc (nil disables collection).
func LoadGraphMetrics(path string, mc *Metrics) (*Graph, error) {
	return graph.LoadFileMetrics(path, mc)
}

// LoadGraphObserved is LoadGraphMetrics additionally emitting parse/build
// spans onto the tracer's timeline (either observer may be nil).
func LoadGraphObserved(path string, mc *Metrics, tr *Tracer) (*Graph, error) {
	return graph.LoadFileObserved(path, mc, tr)
}

// NewGraphParallelMetrics is NewGraphParallel recording per-stage build
// phase durations into mc (nil disables collection).
func NewGraphParallelMetrics(numVertices int, edges []Edge, workers int, mc *Metrics) (*Graph, error) {
	return graph.FromEdgesParallelMetrics(numVertices, edges, workers, mc)
}

// SaveGraph writes a graph in the format implied by the path extension.
func SaveGraph(path string, g *Graph) error { return graph.SaveFile(path, g) }

// Summarize computes Stats for g.
func Summarize(name string, g *Graph) Stats { return graph.Summarize(name, g) }

// SkewPercent returns the percentage of the graph's set intersections whose
// endpoint degree ratio exceeds threshold (the paper's Table 2 statistic;
// the paper uses threshold 50).
func SkewPercent(g *Graph, threshold float64) float64 {
	return graph.SkewPercent(g, threshold)
}

// GenerateProfile builds a synthetic stand-in for one of the paper's five
// datasets ("LJ", "OR", "WI", "TW", "FR") at the given scale; scale 1.0 is
// roughly 1/1000 of the original graph with the paper's average degree and
// degree-skew percentage preserved. Generation is deterministic.
func GenerateProfile(name string, scale float64) (*Graph, error) {
	p, err := gen.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	return p.Generate(scale)
}

// ProfileNames lists the dataset profiles in the paper's Table 1 order.
func ProfileNames() []string {
	names := make([]string, len(gen.Profiles))
	for i, p := range gen.Profiles {
		names[i] = p.Name
	}
	return names
}

// Algorithm selects the counting algorithm.
type Algorithm = core.Algorithm

// The counting algorithms: the paper's baseline merge M, the combined
// merge-with-pivot-skip MPS (Algorithm 1), the dynamic bitmap index BMP
// (Algorithm 2), BMP with range filtering, and the per-edge adaptive
// dispatcher ADAPT, which picks one of five kernels per edge from a
// (min-degree, degree-ratio) crossover table (see Options.Calibration).
const (
	AlgoM        = core.AlgoM
	AlgoMPS      = core.AlgoMPS
	AlgoBMP      = core.AlgoBMP
	AlgoBMPRF    = core.AlgoBMPRF
	AlgoAdaptive = core.AlgoAdaptive
)

// CalibrationTable is AlgoAdaptive's crossover table: for each (min-degree,
// degree-ratio) bucket, the intersection kernel to run. Obtain one from
// DefaultCalibration (deterministic) or Calibrate (host-measured); the
// table serializes to JSON with kernel names, the format `cnc -calibrate`
// prints.
type CalibrationTable = adaptive.Table

// DefaultCalibration returns the deterministic built-in crossover table —
// the table AlgoAdaptive uses when Options.Calibration is nil, chosen so
// runs are reproducible without a calibration pass.
func DefaultCalibration() *CalibrationTable { return adaptive.Default() }

// Calibrate measures the kernel crossover points on this host: it times
// merge, block-merge, gallop, hash-probe and bitmap-probe kernels on
// synthetic sorted lists at each (min-degree, degree-ratio) bucket and
// returns the table of winners, smoothed to monotone crossovers. It runs
// in well under a second; pass the result via Options.Calibration.
func Calibrate() (*CalibrationTable, error) { return adaptive.Calibrate(adaptive.Options{}) }

// Algorithms lists all algorithms in presentation order.
var Algorithms = core.Algorithms

// Options configures Count. The zero value runs the baseline merge on all
// cores with the paper's default tuning.
type Options struct {
	// Algorithm is the counting algorithm (default AlgoM).
	Algorithm Algorithm

	// Context, when non-nil, cancels the run cooperatively: workers check
	// it at task-pop and steal boundaries, stop within one task, and join
	// before Count returns a *CanceledError wrapping the partial result.
	// errors.Is against ErrCanceled/ErrDeadline distinguishes an explicit
	// cancel (SIGINT, CancelFunc) from an expired deadline (-timeout). Nil
	// disables cancellation at negligible cost.
	Context context.Context

	// MemoryBudgetBytes, when > 0, bounds the per-run index allocation of
	// the bitmap algorithms: a BMP/BMP-RF run whose thread-local bitmaps
	// would exceed the budget downgrades to MPS (Result.Downgraded, metric
	// core.bmp_downgrades) instead of allocating unboundedly. 0 = no
	// budget.
	MemoryBudgetBytes int64

	// Threads is the worker count; < 1 means all cores, 1 is sequential.
	Threads int

	// TaskSize is |T|, the edge offsets per dynamically scheduled task;
	// <= 0 uses the default (2048).
	TaskSize int

	// SkewThreshold is MPS's degree-skew ratio t; <= 0 uses 50.
	SkewThreshold float64

	// Lanes is the block-merge lane width (1 scalar, 8 ≈ AVX2,
	// 16 ≈ AVX-512); <= 0 uses 8.
	Lanes int

	// RangeScale is the RF bitmap-to-filter size ratio; <= 0 uses 4096.
	RangeScale int

	// Calibration is AlgoAdaptive's kernel crossover table; nil uses
	// DefaultCalibration(). Produce a host-measured table with Calibrate.
	// Ignored by the other algorithms.
	Calibration *CalibrationTable

	// Reorder relabels vertices in degree-descending order before counting
	// and maps the counts back, giving the bitmap algorithms their
	// O(min(d_u, d_v)) per-intersection bound. Recommended for AlgoBMP and
	// AlgoBMPRF.
	Reorder bool

	// CollectWork gathers abstract operation counts into Result.Work
	// (slower; used by the processor models).
	CollectWork bool

	// Metrics, when non-nil, receives phase timings (reorder, context
	// setup, counting, count mapping), kernel counters, and per-worker
	// scheduler tallies with an imbalance summary. Nil disables all
	// collection at negligible cost.
	Metrics *Metrics

	// Trace, when non-nil, receives execution spans: coarse phases
	// (reorder, setup, count, reduce, count mapping) on the main timeline
	// row and one span per scheduled task on each worker's row. Write the
	// result with (*Tracer).WriteJSON and open it in Perfetto. Nil
	// disables all tracing at negligible cost.
	Trace *Tracer

	// Progress, when non-nil, receives live progress from the counting
	// region (remaining units, per-worker heartbeats) for the
	// observability plane's /progress endpoint. Nil disables it at
	// negligible cost.
	Progress *Progress
}

// Result is a counting run's outcome.
type Result = core.Result

// ErrCanceled and ErrDeadline classify an interrupted Count: ErrCanceled
// when Options.Context was canceled outright (SIGINT, a watchdog abort,
// an explicit CancelFunc), ErrDeadline when its deadline expired. Test
// with errors.Is against the error Count returned.
var (
	ErrCanceled = sched.ErrCanceled
	ErrDeadline = sched.ErrDeadline
)

// CanceledError is the typed error an interrupted Count returns; its
// Partial field holds the run's partial result (finished counts, elapsed
// time, committed scheduler tallies). Retrieve it with errors.As.
type CanceledError = core.CanceledError

// Count computes cnt[e] = |N(u) ∩ N(v)| for every directed edge offset e of
// g. The count array is symmetric: cnt[e(u,v)] == cnt[e(v,u)].
func Count(g *Graph, opts Options) (*Result, error) {
	coreOpts := core.Options{
		Algorithm:         opts.Algorithm,
		Context:           opts.Context,
		MemoryBudgetBytes: opts.MemoryBudgetBytes,
		Threads:           opts.Threads,
		TaskSize:          opts.TaskSize,
		SkewThreshold:     opts.SkewThreshold,
		Lanes:             opts.Lanes,
		RangeScale:        opts.RangeScale,
		Calibration:       opts.Calibration,
		CollectWork:       opts.CollectWork,
		Metrics:           opts.Metrics,
		Trace:             opts.Trace,
		Progress:          opts.Progress,
	}
	if !opts.Reorder {
		return core.Count(g, coreOpts)
	}
	stop, span := opts.Metrics.StartPhase("reorder"), opts.Trace.Span("reorder")
	rg, r := graph.ReorderByDegree(g)
	span()
	stop()
	res, err := core.Count(rg, coreOpts)
	if err != nil {
		// A canceled run computed its partial counts on the reordered
		// graph; map them back so the caller's partial result uses the
		// original edge offsets like a completed one would.
		var ce *CanceledError
		if errors.As(err, &ce) && ce.Partial != nil {
			ce.Partial.Counts = graph.MapCounts(g, rg, r, ce.Partial.Counts)
		}
		return nil, err
	}
	stop, span = opts.Metrics.StartPhase("map_counts"), opts.Trace.Span("map_counts")
	res.Counts = graph.MapCounts(g, rg, r, res.Counts)
	span()
	stop()
	return res, nil
}

// CountEdge computes the common neighbor count of the single edge (u,v),
// for spot queries. It returns an error when (u,v) is not an edge.
func CountEdge(g *Graph, u, v VertexID) (uint32, error) {
	if int(u) >= g.NumVertices() || int(v) >= g.NumVertices() {
		return 0, fmt.Errorf("cncount: vertex out of range")
	}
	if !g.HasEdge(u, v) {
		return 0, fmt.Errorf("cncount: (%d,%d) is not an edge", u, v)
	}
	return countIntersection(g.Neighbors(u), g.Neighbors(v)), nil
}

func countIntersection(a, b []VertexID) uint32 {
	var c uint32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}
